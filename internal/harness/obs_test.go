package harness

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xmtfft/internal/metrics"
)

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, body
}

// TestObsEndToEnd is the acceptance-criteria test: serve the
// observability endpoints while a detailed ablation sweep runs, scrape
// /metrics mid-run and after, and validate the exposition with the
// in-repo parser — per-shard event rates, utilization, fault and
// watchdog series all present.
func TestObsEndToEnd(t *testing.T) {
	obs := NewObs()
	obs.Epoch = 256
	addr, err := obs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	base := "http://" + addr

	done := make(chan error, 1)
	go func() {
		_, err := AblationReportObs(io.Discard, 64, 8, 0, 2, obs)
		done <- err
	}()

	// Scrape while the sweep runs: every response must be valid
	// OpenMetrics, whatever instant it lands on.
	var midrunParses int
loop:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break loop
		default:
			resp, body := scrape(t, base+"/metrics")
			if got := resp.Header.Get("Content-Type"); got != metrics.ContentType {
				t.Fatalf("Content-Type = %q, want %q", got, metrics.ContentType)
			}
			if _, err := metrics.Parse(bytes.NewReader(body)); err != nil {
				t.Fatalf("mid-run exposition invalid: %v\n%s", err, body)
			}
			midrunParses++
		}
	}
	if midrunParses == 0 {
		t.Error("sweep finished before any mid-run scrape (should not happen)")
	}

	// Final scrape: all acceptance series present with sane values.
	_, body := scrape(t, base+"/metrics")
	exp, err := metrics.Parse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("final exposition invalid: %v", err)
	}
	if v, ok := exp.Value("xmtfft_sim_events_total", nil); !ok || v <= 0 {
		t.Errorf("xmtfft_sim_events_total = %g (present=%v), want > 0", v, ok)
	}
	if v, ok := exp.Value("xmtfft_sim_shard_events_total", map[string]string{"shard": "0"}); !ok || v <= 0 {
		t.Errorf("per-shard event series missing or zero: %g %v", v, ok)
	}
	if _, ok := exp.Value("xmtfft_sim_shard_events_per_second", map[string]string{"shard": "0"}); !ok {
		t.Error("per-shard event-rate series missing")
	}
	if _, ok := exp.Value("xmtfft_util_dram", nil); !ok {
		t.Error("utilization series missing")
	}
	if _, ok := exp.Value("xmtfft_faults_total", map[string]string{"kind": "silent"}); !ok {
		t.Error("fault series missing")
	}
	if _, ok := exp.Value("xmtfft_watchdog_heartbeat_age_seconds", nil); !ok {
		t.Error("watchdog heartbeat series missing")
	}
	if v, ok := exp.Value("xmtfft_ops_total", map[string]string{"kind": "fp"}); !ok || v <= 0 {
		t.Errorf("machine op counters not bridged: %g %v", v, ok)
	}

	// /progress reflects the finished sweep.
	resp, body := scrape(t, base+"/progress")
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("progress Content-Type = %q", got)
	}
	var p Progress
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("progress JSON invalid: %v\n%s", err, body)
	}
	if p.Events == 0 || p.Cycle == 0 {
		t.Errorf("progress shows no work: %+v", p)
	}
	if p.WorkDone != 5 || p.WorkTotal != 5 {
		t.Errorf("work units = %d/%d, want 5/5", p.WorkDone, p.WorkTotal)
	}
	// The transform names its own sections as it runs ("rotate r2", ...),
	// so the live phase is whatever the simulation last entered — it just
	// has to be present.
	if p.Phase == "" {
		t.Error("phase empty after an observed sweep")
	}
	if p.HeartbeatAgeSec < 0 {
		t.Error("heartbeat never published")
	}

	// pprof is mounted.
	resp, _ = scrape(t, base+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	resp, _ = scrape(t, base+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}
}

// TestObsSnapshot: the periodic snapshot writer leaves a parseable
// exposition behind, including after Close's final flush.
func TestObsSnapshot(t *testing.T) {
	obs := NewObs()
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var mu sync.Mutex
	var snapErrs []error
	obs.StartSnapshots(path, time.Millisecond, func(err error) {
		mu.Lock()
		snapErrs = append(snapErrs, err)
		mu.Unlock()
	})
	obs.Telemetry.Events.Add(12345)
	time.Sleep(20 * time.Millisecond)
	if err := obs.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snapErrs) > 0 {
		t.Fatalf("snapshot errors: %v", snapErrs)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := metrics.Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("snapshot not parseable: %v\n%s", err, data)
	}
	if v, ok := exp.Value("xmtfft_sim_events_total", nil); !ok || v != 12345 {
		t.Errorf("snapshot events = %g (present=%v), want 12345", v, ok)
	}
}

// TestObsProgressETA: the ETA appears once work units tick.
func TestObsProgressETA(t *testing.T) {
	obs := NewObs()
	p := obs.Progress()
	if p.ETASec != -1 {
		t.Errorf("ETA with no work = %g, want -1", p.ETASec)
	}
	obs.SetWork(4)
	obs.AddWork(2)
	time.Sleep(2 * time.Millisecond)
	p = obs.Progress()
	if p.ETASec < 0 {
		t.Errorf("ETA after 2/4 units = %g, want >= 0", p.ETASec)
	}
	if p.WorkDone != 2 || p.WorkTotal != 4 {
		t.Errorf("work = %d/%d, want 2/4", p.WorkDone, p.WorkTotal)
	}
}

// TestRunObsBench: the overhead record is self-consistent and upholds
// the zero-alloc contract.
func TestRunObsBench(t *testing.T) {
	rec, err := RunObsBench(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != "xmt-obs-bench" || len(rec.Results) != 3 {
		t.Fatalf("unexpected record shape: %+v", rec)
	}
	for i, mode := range []string{"off", "telemetry", "live"} {
		r := rec.Results[i]
		if r.Mode != mode || r.Cycles == 0 || r.Events == 0 {
			t.Errorf("result %d = %+v, want mode %q with nonzero work", i, r, mode)
		}
		if r.Cycles != rec.Results[0].Cycles {
			t.Errorf("mode %q changed simulated cycles", mode)
		}
	}
	hp := rec.HotPath
	if hp.CounterAddAllocs != 0 || hp.GaugeSetAllocs != 0 || hp.HistObserveAllocs != 0 {
		t.Errorf("hot path allocates: %+v", hp)
	}
	if strings.Contains(rec.Note, "WARNING") {
		t.Errorf("record carries a contract warning: %s", rec.Note)
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back ObsBenchRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("record does not round-trip: %v", err)
	}
}

// TestStartProfiles: both profiles written, non-empty, and a second
// stop call is harmless.
func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}

	// Disabled profiles write nothing.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestNewLogger: level parsing, rejection, and JSON output shape.
func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "warn", true)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown", "k", 7)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly the warn line, got %q", buf.String())
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if doc["msg"] != "shown" || doc["k"] != float64(7) {
		t.Errorf("unexpected log document: %v", doc)
	}

	buf.Reset()
	if l, err = NewLogger(&buf, "", false); err != nil {
		t.Fatal(err)
	}
	l.Debug("hidden at default info")
	l.Info("text line")
	if out := buf.String(); strings.Contains(out, "hidden") || !strings.Contains(out, "text line") {
		t.Errorf("default level wrong: %q", out)
	}

	if _, err := NewLogger(&buf, "loud", false); err == nil {
		t.Error("bad level accepted")
	}
}
