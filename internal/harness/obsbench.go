package harness

// Observability-overhead benchmark: the same FFT workload simulated with
// observability off, with engine telemetry only, and with the full live
// surface (telemetry + machine metrics bridge), written as BENCH_obs.json.
// It is the machine-readable form of the two contracts the code makes:
// the off state costs only nil-guarded branches (overhead_pct ~ noise),
// and the on-state hot path (counter add, gauge set, histogram observe)
// allocates nothing. Simulated cycles are asserted identical across
// modes — observability never perturbs results.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"xmtfft/internal/config"
	"xmtfft/internal/core"
	"xmtfft/internal/fft"
	"xmtfft/internal/metrics"
	"xmtfft/internal/sim"
	"xmtfft/internal/xmt"
)

// ObsBenchResult is one observability mode's measurement (best of reps).
type ObsBenchResult struct {
	Mode         string  `json:"mode"` // "off", "telemetry", "live"
	ElapsedSec   float64 `json:"elapsed_sec"`
	Cycles       uint64  `json:"cycles"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	OverheadPct  float64 `json:"overhead_pct"` // vs the "off" mode
}

// ObsHotPath holds microbenchmarks of the scrape-side primitives the
// simulation hot path touches.
type ObsHotPath struct {
	CounterAddNs       float64 `json:"counter_add_ns"`
	GaugeSetNs         float64 `json:"gauge_set_ns"`
	HistogramObserveNs float64 `json:"histogram_observe_ns"`
	CounterAddAllocs   float64 `json:"counter_add_allocs"`
	GaugeSetAllocs     float64 `json:"gauge_set_allocs"`
	HistObserveAllocs  float64 `json:"histogram_observe_allocs"`
	EncodeNs           float64 `json:"encode_ns"` // one full exposition of the bridged registry
}

// ObsBenchRecord is the full BENCH_obs.json payload.
type ObsBenchRecord struct {
	Kind       string           `json:"kind"` // "xmt-obs-bench"
	Config     string           `json:"config"`
	TCUs       int              `json:"tcus"`
	N          int              `json:"n"`
	Reps       int              `json:"reps"`
	GoMaxProcs int              `json:"go_max_procs"`
	NumCPU     int              `json:"num_cpu"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Results    []ObsBenchResult `json:"results"`
	HotPath    ObsHotPath       `json:"hot_path"`
	Note       string           `json:"note,omitempty"`
}

// Write emits the record as indented JSON.
func (r *ObsBenchRecord) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// obsBenchOnce runs one n^3 FFT on a fresh serial machine — the serial
// engine is the worst case for the per-event telemetry branch — in the
// given observability mode.
func obsBenchOnce(cfg config.Config, n int, mode string) (ObsBenchResult, error) {
	m, err := xmt.New(cfg)
	if err != nil {
		return ObsBenchResult{}, err
	}
	switch mode {
	case "off":
	case "telemetry":
		m.SetTelemetry(&sim.Telemetry{})
	case "live":
		reg := metrics.NewRegistry()
		m.AttachLiveMetrics(metrics.NewMachineSet(reg), 0)
		m.SetTelemetry(&sim.Telemetry{})
	default:
		return ObsBenchResult{}, fmt.Errorf("harness: unknown obs-bench mode %q", mode)
	}
	tr, err := core.New3D(m, n, n, n)
	if err != nil {
		return ObsBenchResult{}, err
	}
	for i := range tr.Data {
		tr.Data[i] = complex(float32(i%17)-8, float32(i%11)-5)
	}
	begin := time.Now()
	run, err := tr.Run(fft.Forward)
	if err != nil {
		return ObsBenchResult{}, err
	}
	elapsed := time.Since(begin).Seconds()
	st := m.SimStats()
	res := ObsBenchResult{
		Mode: mode, ElapsedSec: elapsed,
		Cycles: run.TotalCycles(), Events: st.Events,
	}
	if elapsed > 0 {
		res.EventsPerSec = float64(st.Events) / elapsed
	}
	return res, nil
}

// allocsPerRun reports average heap allocations per call of f, after a
// warm-up call (the moral equivalent of testing.AllocsPerRun, kept out
// of the testing package so release binaries can run it).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// nsPerOp times f over runs iterations.
func nsPerOp(runs int, f func()) float64 {
	begin := time.Now()
	for i := 0; i < runs; i++ {
		f()
	}
	return float64(time.Since(begin).Nanoseconds()) / float64(runs)
}

// hotPathBench measures the metric primitives on a bridged registry.
func hotPathBench() ObsHotPath {
	reg := metrics.NewRegistry()
	metrics.NewMachineSet(reg)
	c := reg.Counter("bench_counter", "bench")
	g := reg.Gauge("bench_gauge", "bench")
	h := reg.Histogram("bench_histogram", "bench", 1, 10, 100, 1000)
	const runs = 1 << 20
	hp := ObsHotPath{
		CounterAddNs:       nsPerOp(runs, func() { c.Add(3) }),
		GaugeSetNs:         nsPerOp(runs, func() { g.Set(42.5) }),
		HistogramObserveNs: nsPerOp(runs, func() { h.Observe(17) }),
		CounterAddAllocs:   allocsPerRun(4096, func() { c.Add(3) }),
		GaugeSetAllocs:     allocsPerRun(4096, func() { g.Set(42.5) }),
		HistObserveAllocs:  allocsPerRun(4096, func() { h.Observe(17) }),
	}
	hp.EncodeNs = nsPerOp(256, func() { reg.WriteOpenMetrics(io.Discard) })
	return hp
}

// RunObsBench measures observability overhead on an n^3 FFT at the
// scaled 4k machine size, each mode the best of reps runs, and asserts
// the cycle counts are identical across modes.
func RunObsBench(tcus, n, reps int) (*ObsBenchRecord, error) {
	cfg, err := config.FourK().Scaled(tcus)
	if err != nil {
		return nil, err
	}
	if reps < 1 {
		reps = 1
	}
	rec := &ObsBenchRecord{
		Kind: "xmt-obs-bench", Config: cfg.Name, TCUs: cfg.TCUs, N: n, Reps: reps,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
	}
	for _, mode := range []string{"off", "telemetry", "live"} {
		var best ObsBenchResult
		for r := 0; r < reps; r++ {
			res, err := obsBenchOnce(cfg, n, mode)
			if err != nil {
				return nil, err
			}
			if r == 0 || res.ElapsedSec < best.ElapsedSec {
				best = res
			}
		}
		rec.Results = append(rec.Results, best)
	}
	off := rec.Results[0]
	for i := range rec.Results {
		r := &rec.Results[i]
		if r.Cycles != off.Cycles || r.Events != off.Events {
			return nil, fmt.Errorf("harness: obs mode %q perturbed the simulation (cycles %d vs %d, events %d vs %d)",
				r.Mode, r.Cycles, off.Cycles, r.Events, off.Events)
		}
		if off.ElapsedSec > 0 {
			r.OverheadPct = (r.ElapsedSec - off.ElapsedSec) / off.ElapsedSec * 100
		}
	}
	rec.HotPath = hotPathBench()
	if rec.HotPath.CounterAddAllocs != 0 || rec.HotPath.GaugeSetAllocs != 0 || rec.HotPath.HistObserveAllocs != 0 {
		rec.Note = "WARNING: metric hot path allocated — zero-alloc contract violated"
	}
	return rec, nil
}
