package model

import (
	"math"
	"sort"

	"xmtfft/internal/config"
	"xmtfft/internal/core"
	"xmtfft/internal/fft"
)

// Sensitivity analysis: how robust are the Table IV projections to the
// calibration constants? Each parameter is perturbed over a relative
// range while the others stay at their calibrated values, and the worst
// resulting deviation from the paper's published GFLOPS is reported.
// This quantifies how much of the reproduction is "dialed in" versus
// structural: parameters whose ±20% swing still keeps every
// configuration within tolerance carry little risk of overfitting.

// Params bundles the calibration constants so they can be varied.
type Params struct {
	StreamWriteBytes float64 // write-allocate cost per 8-byte store
	RotationWriteAmp float64
	NoCDataBytes     float64
	NoCLevelFactor   float64
}

// Calibrated returns the values used by Project3D.
func Calibrated() Params {
	return Params{
		StreamWriteBytes: StreamWriteBytes,
		RotationWriteAmp: RotationWriteAmp,
		NoCDataBytes:     NoCDataBytes,
		NoCLevelFactor:   NoCLevelFactor,
	}
}

// projectWith is Project3D with explicit parameters (cubic input).
func projectWith(cfg config.Config, n int, prm Params) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	radices, err := fft.Radices(n)
	if err != nil {
		return 0, err
	}
	points := float64(n) * float64(n) * float64(n)
	peakFlops := cfg.PeakGFLOPS() * 1e9
	peakDRAM := cfg.PeakDRAMBandwidthGBs() * 1e9
	nocBW := cfg.AggregateNoCBandwidthGBs() * 1e9 *
		math.Pow(prm.NoCLevelFactor, float64(cfg.ButterflyLevels))

	var total float64
	for round := 0; round < 3; round++ {
		for p, r := range radices {
			last := p == len(radices)-1
			flops := float64(core.FlopsPerButterfly(r)) / float64(r) * points
			wb := prm.StreamWriteBytes
			if last {
				wb *= prm.RotationWriteAmp
			}
			dram := (StreamReadBytes + wb) * points / peakDRAM
			noc := (prm.NoCDataBytes + 8*float64(r-1)/float64(r)) * points / nocBW
			compute := flops / peakFlops
			total += math.Max(compute, math.Sqrt(dram*dram+noc*noc))
		}
	}
	std := 5 * points * math.Log2(points)
	return std / total / 1e9, nil
}

// SensitivityResult reports one parameter's effect.
type SensitivityResult struct {
	Param string
	// WorstDev is the largest |deviation| from the paper's Table IV over
	// all configurations when the parameter is scaled across Scales.
	Scales   []float64
	WorstDev float64
}

// Sensitivity sweeps each calibration parameter over the given relative
// scales (e.g. 0.8, 0.9, 1.1, 1.2) and reports the worst Table IV
// deviation induced.
func Sensitivity(scales []float64) ([]SensitivityResult, error) {
	type setter struct {
		name  string
		apply func(p *Params, s float64)
	}
	setters := []setter{
		{"StreamWriteBytes", func(p *Params, s float64) { p.StreamWriteBytes *= s }},
		{"RotationWriteAmp", func(p *Params, s float64) { p.RotationWriteAmp *= s }},
		{"NoCDataBytes", func(p *Params, s float64) { p.NoCDataBytes *= s }},
		{"NoCLevelFactor", func(p *Params, s float64) { p.NoCLevelFactor *= s }},
	}
	cfgs := config.Paper()
	out := make([]SensitivityResult, 0, len(setters))
	for _, st := range setters {
		res := SensitivityResult{Param: st.name, Scales: scales}
		for _, s := range scales {
			prm := Calibrated()
			st.apply(&prm, s)
			if prm.NoCLevelFactor > 1 {
				prm.NoCLevelFactor = 1
			}
			for _, c := range cfgs {
				g, err := projectWith(c, PaperN, prm)
				if err != nil {
					return nil, err
				}
				dev := math.Abs(g-PaperTableIV[c.Name]) / PaperTableIV[c.Name]
				if dev > res.WorstDev {
					res.WorstDev = dev
				}
			}
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorstDev > out[j].WorstDev })
	return out, nil
}
