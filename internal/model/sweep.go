package model

import (
	"fmt"

	"xmtfft/internal/config"
	"xmtfft/internal/fft"
)

// Sweeps over problem size and machine size: the scaling studies that
// extend the paper's single-point (512³) evaluation. These identify,
// for every (configuration, size) pair, which resource binds — the
// machine-balance question §V is ultimately about.

// Binding identifies the resource that limits a projection.
type Binding string

// Binding values.
const (
	BindCompute Binding = "compute"
	BindDRAM    Binding = "dram"
	BindNoC     Binding = "noc"
)

// BindingOf reports which resource dominates the overall time of a
// projection on cfg: compute if the compute time is the max; otherwise
// whichever of DRAM and NoC contributes more to the combined memory
// term.
func BindingOf(cfg config.Config, n int) (Binding, error) {
	radices, err := radicesOf(n)
	if err != nil {
		return "", err
	}
	points := float64(n) * float64(n) * float64(n)
	var compute, dram, noc float64
	for round := 0; round < 3; round++ {
		for p, r := range radices {
			t := passTime(cfg, points, r, p == len(radices)-1)
			compute += t.compute
			dram += t.dram
			noc += t.noc
		}
	}
	switch {
	case compute >= dram && compute >= noc:
		return BindCompute, nil
	case dram >= noc:
		return BindDRAM, nil
	default:
		return BindNoC, nil
	}
}

func radicesOf(n int) ([]int, error) {
	// Same decomposition Project3D uses, so the attribution matches.
	return fft.Radices(n)
}

// SizePoint is one row of a size sweep.
type SizePoint struct {
	N       int
	Proj    Projection
	Binding Binding
}

// SizeSweep projects cfg across per-dimension sizes (each a power of
// two), e.g. 64..1024.
func SizeSweep(cfg config.Config, sizes []int) ([]SizePoint, error) {
	out := make([]SizePoint, 0, len(sizes))
	for _, n := range sizes {
		p, err := Project3D(cfg, n)
		if err != nil {
			return nil, err
		}
		b, err := BindingOf(cfg, n)
		if err != nil {
			return nil, err
		}
		out = append(out, SizePoint{N: n, Proj: p, Binding: b})
	}
	return out, nil
}

// StrongScaling projects a fixed size across all paper configurations,
// returning speedups relative to the first.
type StrongPoint struct {
	Cfg     config.Config
	Proj    Projection
	Speedup float64 // vs the smallest configuration
	Binding Binding
}

// StrongScaling runs the fixed-size sweep.
func StrongScaling(n int) ([]StrongPoint, error) {
	cfgs := config.Paper()
	out := make([]StrongPoint, 0, len(cfgs))
	var base float64
	for i, c := range cfgs {
		p, err := Project3D(c, n)
		if err != nil {
			return nil, err
		}
		b, err := BindingOf(c, n)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = p.Overall.TimeSec
		}
		out = append(out, StrongPoint{Cfg: c, Proj: p, Speedup: base / p.Overall.TimeSec, Binding: b})
	}
	return out, nil
}

func (p SizePoint) String() string {
	return fmt.Sprintf("n=%4d: %8.0f GFLOPS, %s-bound", p.N, p.Proj.GFLOPS, p.Binding)
}

// WeakPoint is one row of the weak-scaling study.
type WeakPoint struct {
	Cfg        config.Config
	Dims       [3]int
	Proj       Projection
	Efficiency float64 // time(base) / time(this): 1.0 = perfect weak scaling
}

// WeakScaling grows the working set with the machine: each doubling of
// TCUs relative to the 4k baseline doubles one array axis (base n per
// axis for 4k). The related-work MPI studies the paper cites (§I-A)
// report weak scaling this way; efficiency is base time / scaled time.
func WeakScaling(baseN int) ([]WeakPoint, error) {
	cfgs := config.Paper()
	base := cfgs[0]
	out := make([]WeakPoint, 0, len(cfgs))
	var baseTime float64
	for _, c := range cfgs {
		factor := c.TCUs / base.TCUs
		dims := [3]int{baseN, baseN, baseN}
		for axis := 0; factor > 1; factor /= 2 {
			dims[axis%3] *= 2
			axis++
		}
		p, err := Project3DDims(c, dims[0], dims[1], dims[2])
		if err != nil {
			return nil, err
		}
		if c.TCUs == base.TCUs {
			baseTime = p.Overall.TimeSec
		}
		out = append(out, WeakPoint{Cfg: c, Dims: dims, Proj: p,
			Efficiency: baseTime / p.Overall.TimeSec})
	}
	return out, nil
}

// FPUPoint is one entry of the FPU-count design sweep.
type FPUPoint struct {
	FPUsPerCluster int
	Proj           Projection
	// Gain is this point's GFLOPS over the previous point's.
	Gain float64
}

// FPUSweep varies FPUs per cluster on a base configuration and projects
// the 512³ FFT — the §V-E design decision ("we also increase the number
// of FPUs to four per cluster; beyond this number, we observe
// diminishing returns"). The sweep quantifies where the returns
// diminish: once the interconnect term dominates, more FPUs stop
// helping.
func FPUSweep(base config.Config, fpus []int) ([]FPUPoint, error) {
	out := make([]FPUPoint, 0, len(fpus))
	prev := 0.0
	for _, f := range fpus {
		c := base
		c.FPUsPerCluster = f
		p, err := Project3D(c, PaperN)
		if err != nil {
			return nil, err
		}
		pt := FPUPoint{FPUsPerCluster: f, Proj: p}
		if prev > 0 {
			pt.Gain = p.GFLOPS / prev
		}
		prev = p.GFLOPS
		out = append(out, pt)
	}
	return out, nil
}
