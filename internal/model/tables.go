package model

import (
	"xmtfft/internal/baseline"
	"xmtfft/internal/config"
)

// PaperN is the per-dimension input size of the paper's evaluation
// (512×512×512 single-precision complex).
const PaperN = 512

// PaperTableIV holds the published Table IV GFLOPS for comparison.
var PaperTableIV = map[string]float64{
	config.Name4K:     239,
	config.Name8K:     500,
	config.Name64K:    3667,
	config.Name128Kx2: 12570,
	config.Name128Kx4: 18972,
}

// PaperTableV holds the published Table V speedups.
var PaperTableV = map[string][2]float64{ // {vs serial, vs 32 threads}
	config.Name4K:     {31, 2.8},
	config.Name8K:     {66, 5.8},
	config.Name64K:    {482, 43},
	config.Name128Kx2: {1652, 147},
	config.Name128Kx4: {2494, 222},
}

// TableIV projects the 512³ FFT on every paper configuration.
func TableIV() ([]Projection, error) {
	cfgs := config.Paper()
	out := make([]Projection, 0, len(cfgs))
	for _, c := range cfgs {
		p, err := Project3D(c, PaperN)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// SpeedupRow is one configuration's Table V entry.
type SpeedupRow struct {
	Cfg             config.Config
	GFLOPS          float64
	VsSerialFFTW    float64
	VsParallelFFTW  float64
	PaperVsSerial   float64
	PaperVsParallel float64
}

// TableV computes speedups of the Table IV projections over the
// published FFTW baselines.
func TableV() ([]SpeedupRow, error) {
	projs, err := TableIV()
	if err != nil {
		return nil, err
	}
	rows := make([]SpeedupRow, 0, len(projs))
	for _, p := range projs {
		paper := PaperTableV[p.Cfg.Name]
		rows = append(rows, SpeedupRow{
			Cfg:             p.Cfg,
			GFLOPS:          p.GFLOPS,
			VsSerialFFTW:    p.GFLOPS / baseline.FFTWSerialGFLOPS,
			VsParallelFFTW:  p.GFLOPS / baseline.FFTWParallelGFLOPS,
			PaperVsSerial:   paper[0],
			PaperVsParallel: paper[1],
		})
	}
	return rows, nil
}

// EdisonComparison is Table VI: Edison's published column next to the
// computed XMT 128k x4 column.
type EdisonComparison struct {
	Edison baseline.Edison

	XMTCfg           config.Config
	XMTProcessors    int
	XMTGroups        int
	XMTCacheMB       float64
	XMTChips         int
	XMTSiliconCM2    float64 // at its native 14 nm process
	XMTNormalizedCM2 float64 // normalized to 22 nm via Intel's 0.54 factor
	XMTPeakPowerKW   float64
	XMTPeakTFLOPS    float64
	XMTFFTTFLOPS     float64 // modeled, 512^3
	XMTPercentOfPeak float64
	SpeedupRatio     float64 // XMT FFT TFLOPS / Edison FFT TFLOPS
	SiliconRatio     float64 // Edison normalized area / XMT normalized area
	PowerRatio       float64
}

// TableVI computes the Edison comparison for the 128k x4 configuration.
func TableVI() (EdisonComparison, error) {
	cfg := config.OneTwentyEightKx4()
	proj, err := Project3D(cfg, PaperN)
	if err != nil {
		return EdisonComparison{}, err
	}
	e := baseline.EdisonData()
	xmtNorm := cfg.TotalSiAreaMM2() / 100 / baseline.Intel14to22AreaFactor // cm², 14→22 nm
	c := EdisonComparison{
		Edison:           e,
		XMTCfg:           cfg,
		XMTProcessors:    cfg.TCUs,
		XMTGroups:        cfg.Clusters,
		XMTCacheMB:       float64(cfg.TotalCacheBytes()) / (1024 * 1024),
		XMTChips:         1,
		XMTSiliconCM2:    cfg.TotalSiAreaMM2() / 100,
		XMTNormalizedCM2: xmtNorm,
		XMTPeakPowerKW:   baseline.XMTPowerKW,
		XMTPeakTFLOPS:    cfg.PeakGFLOPS() / 1000,
		XMTFFTTFLOPS:     proj.GFLOPS / 1000,
	}
	c.XMTPercentOfPeak = c.XMTFFTTFLOPS / c.XMTPeakTFLOPS * 100
	c.SpeedupRatio = c.XMTFFTTFLOPS / e.FFTTFLOPS
	c.SiliconRatio = e.NormalizedCM2 / c.XMTNormalizedCM2
	c.PowerRatio = e.PeakPowerKW / c.XMTPeakPowerKW
	return c, nil
}

// SiliconComparison4K reproduces §VI-A's area argument: the 4k XMT
// configuration against one and two E5-2690 sockets at 22 nm.
type SiliconComparison4K struct {
	XMTAreaMM2        float64
	XeonAreaMM2At22   float64
	AreaVsOneSocket   float64 // 4k area / one Xeon (paper: ~1.15)
	AreaVsTwoSockets  float64 // 4k area / two Xeons (paper: ~0.58)
	SpeedupVs32Thread float64 // paper: 2.8
}

// SiliconVsXeon computes the §VI-A comparison from the model.
func SiliconVsXeon() (SiliconComparison4K, error) {
	cfg := config.FourK()
	proj, err := Project3D(cfg, PaperN)
	if err != nil {
		return SiliconComparison4K{}, err
	}
	xeon := baseline.XeonAreaAt22nm()
	return SiliconComparison4K{
		XMTAreaMM2:        cfg.TotalSiAreaMM2(),
		XeonAreaMM2At22:   xeon,
		AreaVsOneSocket:   cfg.TotalSiAreaMM2() / xeon,
		AreaVsTwoSockets:  cfg.TotalSiAreaMM2() / (2 * xeon),
		SpeedupVs32Thread: proj.GFLOPS / baseline.FFTWParallelGFLOPS,
	}, nil
}

// EnergyComparison extends Table VI with energy per unit of FFT work
// (power ÷ throughput): the paper reports the power (375x) and speedup
// (1.4x) ratios separately; their product is the energy-efficiency
// ratio per FFT.
type EnergyComparison struct {
	XMTJoulesPerGFLOP    float64 // 128k x4, modeled FFT throughput
	EdisonJoulesPerGFLOP float64 // published Edison FFT throughput
	EfficiencyRatio      float64 // Edison / XMT (higher = XMT better)
}

// EnergyVsEdison computes the energy-per-work comparison.
func EnergyVsEdison() (EnergyComparison, error) {
	c, err := TableVI()
	if err != nil {
		return EnergyComparison{}, err
	}
	xmt := c.XMTPeakPowerKW * 1e3 / (c.XMTFFTTFLOPS * 1e3) // W per GFLOPS = J per GFLOP
	edison := c.Edison.PeakPowerKW * 1e3 / (c.Edison.FFTTFLOPS * 1e3)
	return EnergyComparison{
		XMTJoulesPerGFLOP:    xmt,
		EdisonJoulesPerGFLOP: edison,
		EfficiencyRatio:      edison / xmt,
	}, nil
}
