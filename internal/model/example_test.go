package model_test

import (
	"fmt"
	"log"

	"xmtfft/internal/config"
	"xmtfft/internal/model"
)

// Project the paper's headline experiment: the 512³ FFT on the largest
// configuration.
func ExampleProject3D() {
	cfg := config.OneTwentyEightKx4()
	p, err := model.Project3D(cfg, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.1f TFLOPS (paper reports 19.0)\n", cfg.Name, p.GFLOPS/1000)
	fmt.Printf("rotation intensity %.3f < non-rotation %.3f\n",
		p.Rotation.Intensity, p.Stream.Intensity)
	// Output:
	// 128k x4: 18.4 TFLOPS (paper reports 19.0)
	// rotation intensity 0.422 < non-rotation 0.562
}

// The roofline of a configuration bounds any achievable point.
func ExampleRooflineOf() {
	roof := model.RooflineOf(config.FourK())
	fmt.Printf("peak %.0f GFLOPS, %.0f GB/s, ridge %.0f FLOPs/byte\n",
		roof.PeakGFLOPS, roof.PeakGBs, roof.Ridge)
	fmt.Printf("bound at 0.5 FLOPs/byte: %.0f GFLOPS\n", roof.Bound(0.5))
	// Output:
	// peak 422 GFLOPS, 422 GB/s, ridge 1 FLOPs/byte
	// bound at 0.5 FLOPs/byte: 211 GFLOPS
}
