package model

import (
	"strings"
	"testing"

	"xmtfft/internal/config"
)

func TestBindingOfPaperConfigs(t *testing.T) {
	// §VI-B: 4k/8k/64k are bandwidth(DRAM)-bound at 512³. 128k x2 sits
	// at the DRAM/NoC crossover — its aggregate DRAM time still edges
	// out the interconnect even though the rotation phase is visibly
	// ICN-limited (observation (b)) — while x4, with 4x the DRAM
	// bandwidth and the same interconnect, is outright NoC-bound
	// (observation (c)).
	want := map[string]Binding{
		config.Name4K:     BindDRAM,
		config.Name8K:     BindDRAM,
		config.Name64K:    BindDRAM,
		config.Name128Kx2: BindDRAM,
		config.Name128Kx4: BindNoC,
	}
	for _, c := range config.Paper() {
		b, err := BindingOf(c, PaperN)
		if err != nil {
			t.Fatal(err)
		}
		if b != want[c.Name] {
			t.Errorf("%s binding = %s, want %s", c.Name, b, want[c.Name])
		}
	}
}

func TestBindingErrors(t *testing.T) {
	if _, err := BindingOf(config.FourK(), 100); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestSizeSweepMonotoneAndLabeled(t *testing.T) {
	pts, err := SizeSweep(config.FourK(), []int{64, 128, 256, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.Proj.GFLOPS <= 0 {
			t.Errorf("point %d: nonpositive GFLOPS", i)
		}
		if !strings.Contains(p.String(), "bound") {
			t.Errorf("point %d: bad string %q", i, p.String())
		}
	}
	// Efficiency depends on the radix decomposition: sizes that are pure
	// powers of 8 (64, 512) avoid a low-FLOP radix-2/4 tail pass that
	// still pays full rotation traffic, so 512 = 8³ — the paper's chosen
	// size — is the best point of the sweep, and pure-8 sizes beat their
	// mixed-radix neighbors.
	byN := map[int]float64{}
	for _, p := range pts {
		byN[p.N] = p.Proj.GFLOPS
	}
	for _, p := range pts {
		if p.Proj.GFLOPS > byN[512] {
			t.Errorf("n=%d (%.0f GFLOPS) beats the paper's 512 (%.0f)", p.N, p.Proj.GFLOPS, byN[512])
		}
	}
	if byN[64] <= byN[128] {
		t.Errorf("pure radix-8 n=64 (%.0f) should beat mixed n=128 (%.0f)", byN[64], byN[128])
	}
	if byN[512] <= byN[1024] {
		t.Errorf("pure radix-8 n=512 (%.0f) should beat mixed n=1024 (%.0f)", byN[512], byN[1024])
	}
}

func TestSizeSweepRejectsBadSize(t *testing.T) {
	if _, err := SizeSweep(config.FourK(), []int{60}); err == nil {
		t.Error("bad size accepted")
	}
}

func TestStrongScaling(t *testing.T) {
	pts, err := StrongScaling(PaperN)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Fatalf("base speedup = %g", pts[0].Speedup)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Errorf("speedup not increasing at %s", pts[i].Cfg.Name)
		}
	}
	// 128k x4 is ~78x the 4k machine (18384/235).
	last := pts[len(pts)-1].Speedup
	if last < 60 || last > 100 {
		t.Errorf("x4 speedup over 4k = %.0f, want ~78", last)
	}
	// Sub-linear overall: 32x the TCUs at the same clock gain less than
	// the 128x raw FPU ratio (2 FPUs... x4 has 16384 FPUs vs 128).
	if last >= 128 {
		t.Errorf("scaling superlinear: %.0f", last)
	}
}

func TestWhereNoCBindingBegins(t *testing.T) {
	// As input grows, bindings stay stable for a given config (the model
	// is size-independent per byte); verify the x4 config is NoC-bound
	// across the sweep while 8k never is.
	for _, n := range []int{64, 256, 1024} {
		b4, err := BindingOf(config.OneTwentyEightKx4(), n)
		if err != nil {
			t.Fatal(err)
		}
		if b4 != BindNoC {
			t.Errorf("x4 at n=%d: %s", n, b4)
		}
		b8, err := BindingOf(config.EightK(), n)
		if err != nil {
			t.Fatal(err)
		}
		if b8 == BindNoC {
			t.Errorf("8k at n=%d unexpectedly NoC-bound", n)
		}
	}
}

func TestProjectDimsMatchesCube(t *testing.T) {
	a, err := Project3D(config.FourK(), 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Project3DDims(config.FourK(), 128, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a.GFLOPS != b.GFLOPS || a.Overall.TimeSec != b.Overall.TimeSec {
		t.Fatalf("cube projections differ: %+v vs %+v", a.Overall, b.Overall)
	}
	if a.TotalPoints() != 128*128*128 {
		t.Fatalf("total points = %d", a.TotalPoints())
	}
}

func TestProjectDimsNonCube(t *testing.T) {
	p, err := Project3DDims(config.FourK(), 512, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalPoints() != 512*256*128 {
		t.Fatalf("points = %d", p.TotalPoints())
	}
	if p.GFLOPS <= 0 {
		t.Fatal("no throughput")
	}
	if _, err := Project3DDims(config.FourK(), 100, 128, 128); err == nil {
		t.Error("bad dim accepted")
	}
}

func TestWeakScaling(t *testing.T) {
	pts, err := WeakScaling(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// Work grows with TCUs: 4k:256^3, 8k: 512x256^2, 64k: 2^28, 128k: 2^29.
	if pts[0].Dims != [3]int{256, 256, 256} {
		t.Errorf("base dims %v", pts[0].Dims)
	}
	if pts[1].Dims != [3]int{512, 256, 256} {
		t.Errorf("8k dims %v", pts[1].Dims)
	}
	if got := pts[2].Dims[0] * pts[2].Dims[1] * pts[2].Dims[2]; got != 16*256*256*256 {
		t.Errorf("64k points %d", got)
	}
	if pts[0].Efficiency != 1 {
		t.Errorf("base efficiency %g", pts[0].Efficiency)
	}
	// Efficiency stays positive and bounded. Values above 1 are real:
	// scaling is per-TCU, and the larger configurations carry more DRAM
	// bandwidth and FPUs per TCU than the 4k baseline (x4 has 16x the
	// channels per memory module), so they beat proportional scaling
	// until the NoC claws it back.
	for _, p := range pts {
		if p.Efficiency < 0.3 || p.Efficiency > 2.5 {
			t.Errorf("%s: weak-scaling efficiency %.2f out of range", p.Cfg.Name, p.Efficiency)
		}
	}
	// The NoC-bound x4 must show lower efficiency than its raw resource
	// advantage would suggest: bounded by the x2 point's shape is enough
	// of a check that blocking is charged.
	if pts[4].Efficiency > pts[3].Efficiency*1.8 {
		t.Errorf("x4 efficiency %.2f implausibly above x2 %.2f", pts[4].Efficiency, pts[3].Efficiency)
	}
}

// §V-E: "we also increase the number of FPUs to four per cluster;
// beyond this number, we observe diminishing returns."
func TestFPUDiminishingReturns(t *testing.T) {
	pts, err := FPUSweep(config.OneTwentyEightKx4(), []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("FPUs=%2d: %6.0f GFLOPS (gain %.2fx)", p.FPUsPerCluster, p.Proj.GFLOPS, p.Gain)
	}
	// 1 -> 2 FPUs helps substantially; 4 -> 8 gives almost nothing.
	if pts[1].Gain < 1.15 {
		t.Errorf("1->2 FPUs gain %.2f, want substantial", pts[1].Gain)
	}
	if pts[3].Gain > 1.10 {
		t.Errorf("4->8 FPUs gain %.2f, want diminishing (<1.10)", pts[3].Gain)
	}
	if pts[4].Gain > 1.05 {
		t.Errorf("8->16 FPUs gain %.2f, want negligible", pts[4].Gain)
	}
	// GFLOPS never decrease with more FPUs.
	for i := 1; i < len(pts); i++ {
		if pts[i].Proj.GFLOPS < pts[i-1].Proj.GFLOPS {
			t.Errorf("GFLOPS fell adding FPUs at %d", pts[i].FPUsPerCluster)
		}
	}
}
