package model

import (
	"math"
	"math/rand"
	"testing"

	"xmtfft/internal/baseline"
	"xmtfft/internal/config"
	"xmtfft/internal/core"
	"xmtfft/internal/fft"
	"xmtfft/internal/xmt"
)

// Tolerance for matching the paper's published table values. The paper
// itself reports up to 33% simulator-vs-FPGA discrepancy (5% for FFT);
// we require the model to land within 8% of every Table IV entry.
const paperTol = 0.08

func TestTableIVMatchesPaper(t *testing.T) {
	projs, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(projs) != 5 {
		t.Fatalf("got %d projections", len(projs))
	}
	for _, p := range projs {
		want := PaperTableIV[p.Cfg.Name]
		dev := (p.GFLOPS - want) / want
		t.Logf("%-8s model %7.0f GFLOPS, paper %7.0f (%+.1f%%)", p.Cfg.Name, p.GFLOPS, want, dev*100)
		if math.Abs(dev) > paperTol {
			t.Errorf("%s: model %.0f GFLOPS vs paper %.0f (%.1f%% off)", p.Cfg.Name, p.GFLOPS, want, dev*100)
		}
	}
	// Monotone increasing across configurations.
	for i := 1; i < len(projs); i++ {
		if projs[i].GFLOPS <= projs[i-1].GFLOPS {
			t.Errorf("GFLOPS not increasing: %s %.0f <= %s %.0f",
				projs[i].Cfg.Name, projs[i].GFLOPS, projs[i-1].Cfg.Name, projs[i-1].GFLOPS)
		}
	}
	// §VI-B observation (c): x4 is a ~51% improvement over x2, far from
	// the 2-4x its raw resources would suggest, because the ICN binds.
	ratio := projs[4].GFLOPS / projs[3].GFLOPS
	if ratio < 1.3 || ratio > 1.8 {
		t.Errorf("x4/x2 ratio = %.2f, want ~1.5", ratio)
	}
}

func TestTableVMatchesPaper(t *testing.T) {
	rows, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		devS := (r.VsSerialFFTW - r.PaperVsSerial) / r.PaperVsSerial
		devP := (r.VsParallelFFTW - r.PaperVsParallel) / r.PaperVsParallel
		t.Logf("%-8s vs-serial %6.0fX (paper %5.0fX), vs-32t %5.1fX (paper %5.1fX)",
			r.Cfg.Name, r.VsSerialFFTW, r.PaperVsSerial, r.VsParallelFFTW, r.PaperVsParallel)
		if math.Abs(devS) > paperTol+0.02 || math.Abs(devP) > paperTol+0.02 {
			t.Errorf("%s: speedups off by %.1f%% / %.1f%%", r.Cfg.Name, devS*100, devP*100)
		}
	}
}

func TestTableVIMatchesPaper(t *testing.T) {
	c, err := TableVI()
	if err != nil {
		t.Fatal(err)
	}
	// Published Edison column.
	if c.Edison.Cores != 124608 || c.Edison.PeakTFLOPS != 2390 {
		t.Fatalf("Edison data wrong: %+v", c.Edison)
	}
	if math.Abs(c.Edison.PercentOfPeak()-0.57) > 0.01 {
		t.Errorf("Edison %% of peak = %.2f, want 0.57", c.Edison.PercentOfPeak())
	}
	// XMT column.
	if c.XMTPeakTFLOPS < 53.9 || c.XMTPeakTFLOPS > 54.2 {
		t.Errorf("XMT peak = %.1f TFLOPS, want 54", c.XMTPeakTFLOPS)
	}
	if math.Abs(c.XMTCacheMB-128) > 0.01 {
		t.Errorf("XMT cache = %.0f MB, want 128", c.XMTCacheMB)
	}
	if math.Abs(c.XMTSiliconCM2-35.4) > 0.1 {
		t.Errorf("XMT silicon = %.1f cm2, want 35.4", c.XMTSiliconCM2)
	}
	if math.Abs(c.XMTNormalizedCM2-66) > 1 {
		t.Errorf("XMT normalized silicon = %.1f cm2, want ~66", c.XMTNormalizedCM2)
	}
	// Paper: 19.0 TFLOPS for FFT, 35% of peak, 1.4X over Edison, 870x
	// silicon, ~357x power.
	if math.Abs(c.XMTFFTTFLOPS-19.0)/19.0 > paperTol {
		t.Errorf("XMT FFT = %.1f TFLOPS, want ~19", c.XMTFFTTFLOPS)
	}
	if c.XMTPercentOfPeak < 30 || c.XMTPercentOfPeak > 40 {
		t.Errorf("XMT %% of peak = %.0f, want ~35", c.XMTPercentOfPeak)
	}
	if c.SpeedupRatio < 1.25 || c.SpeedupRatio > 1.55 {
		t.Errorf("speedup ratio = %.2f, want ~1.4", c.SpeedupRatio)
	}
	if math.Abs(c.SiliconRatio-870)/870 > 0.05 {
		t.Errorf("silicon ratio = %.0f, want ~870", c.SiliconRatio)
	}
	if math.Abs(c.PowerRatio-357)/357 > 0.05 {
		t.Errorf("power ratio = %.0f, want ~357", c.PowerRatio)
	}
}

func TestSiliconVsXeon(t *testing.T) {
	s, err := SiliconVsXeon()
	if err != nil {
		t.Fatal(err)
	}
	// §VI-A: 4k uses ~1.15x one Xeon's silicon and 58% of two, while
	// beating 32-thread FFTW by ~2.8x.
	if math.Abs(s.AreaVsOneSocket-1.15) > 0.03 {
		t.Errorf("area vs one socket = %.2f, want 1.15", s.AreaVsOneSocket)
	}
	if math.Abs(s.AreaVsTwoSockets-0.58) > 0.02 {
		t.Errorf("area vs two sockets = %.2f, want 0.58", s.AreaVsTwoSockets)
	}
	if math.Abs(s.SpeedupVs32Thread-2.8)/2.8 > paperTol+0.02 {
		t.Errorf("speedup vs 32 threads = %.2f, want ~2.8", s.SpeedupVs32Thread)
	}
}

// Fig. 3 shape assertions from §VI-B.
func TestFig3Shape(t *testing.T) {
	projs, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range projs {
		roof := RooflineOf(p.Cfg)
		// All phases must respect the roofline.
		for _, ph := range []PhasePoint{p.Stream, p.Rotation, p.Overall} {
			if ph.ActualGFLOPS > roof.Bound(ph.Intensity)*1.001 {
				t.Errorf("%s %s: %.0f GFLOPS exceeds roof %.0f at intensity %.3f",
					p.Cfg.Name, ph.Name, ph.ActualGFLOPS, roof.Bound(ph.Intensity), ph.Intensity)
			}
		}
		// Rotation sits left of (lower intensity than) non-rotation, and
		// overall lies between them.
		if !(p.Rotation.Intensity < p.Stream.Intensity) {
			t.Errorf("%s: rotation intensity %.3f >= stream %.3f", p.Cfg.Name, p.Rotation.Intensity, p.Stream.Intensity)
		}
		if p.Overall.Intensity <= p.Rotation.Intensity || p.Overall.Intensity >= p.Stream.Intensity {
			t.Errorf("%s: overall intensity %.3f not between phases", p.Cfg.Name, p.Overall.Intensity)
		}
		// Observation (a): on 4k and 8k both phases are essentially on
		// the sloped (bandwidth) line.
		if p.Cfg.ButterflyLevels == 0 {
			for _, ph := range []PhasePoint{p.Stream, p.Rotation} {
				frac := ph.ActualGFLOPS / roof.Bound(ph.Intensity)
				if frac < 0.95 {
					t.Errorf("%s %s: only %.0f%% of bandwidth bound; expected on the slope",
						p.Cfg.Name, ph.Name, frac*100)
				}
			}
		}
	}
	// Observation (b): the rotation step falls below the slope on 64k
	// and further on 128k x2.
	gap := func(p Projection) float64 {
		roof := RooflineOf(p.Cfg)
		return 1 - p.Rotation.ActualGFLOPS/roof.Bound(p.Rotation.Intensity)
	}
	g64, gx2 := gap(projs[2]), gap(projs[3])
	if !(g64 > 0.01) {
		t.Errorf("64k rotation gap = %.3f, want visibly below the slope", g64)
	}
	if !(gx2 > g64) {
		t.Errorf("x2 rotation gap %.3f not more pronounced than 64k %.3f", gx2, g64)
	}
	// Non-rotation time dominates, so overall is closer to it (§VI-B).
	for _, p := range projs {
		if !(p.Stream.TimeSec > p.Rotation.TimeSec) {
			t.Errorf("%s: non-rotation phase (%.3gs) does not dominate rotation (%.3gs)",
				p.Cfg.Name, p.Stream.TimeSec, p.Rotation.TimeSec)
		}
	}
}

func TestRooflineBound(t *testing.T) {
	r := RooflineOf(config.FourK())
	if math.Abs(r.Ridge-1.0) > 0.01 {
		t.Errorf("4k ridge = %.2f", r.Ridge)
	}
	if got := r.Bound(0.5); math.Abs(got-0.5*r.PeakGBs) > 1e-9 {
		t.Errorf("bound below ridge = %g", got)
	}
	if got := r.Bound(100); got != r.PeakGFLOPS {
		t.Errorf("bound above ridge = %g", got)
	}
}

func TestMaxFFTIntensityAboveOperatingPoint(t *testing.T) {
	// The paper's intensity upper bound (0.25·log2 S) lies well above
	// the actual operating intensity — FFT stays bandwidth-bound.
	projs, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range projs {
		if p.Overall.Intensity >= p.Cfg.MaxFFTIntensity() {
			t.Errorf("%s: operating intensity %.2f above theoretical cap %.2f",
				p.Cfg.Name, p.Overall.Intensity, p.Cfg.MaxFFTIntensity())
		}
	}
}

func TestProjectErrors(t *testing.T) {
	bad := config.FourK()
	bad.TCUs = 7
	if _, err := Project3D(bad, 64); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Project3D(config.FourK(), 100); err == nil {
		t.Error("non-power-of-two size accepted")
	}
}

// Cross-validation: the analytic model and the detailed event simulator
// must agree on overlapping (config, size) points to within a factor
// reflecting the model's omissions (latency ramps, partial caching).
func TestModelMatchesDetailedSim(t *testing.T) {
	if testing.Short() {
		t.Skip("detailed simulation")
	}
	cases := []struct {
		tcus int
		n    int
	}{
		{256, 32},
		{512, 32},
	}
	for _, tc := range cases {
		cfg, err := config.FourK().Scaled(tc.tcus)
		if err != nil {
			t.Fatal(err)
		}
		m, err := xmt.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := core.New3D(m, tc.n, tc.n, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := range tr.Data {
			tr.Data[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
		}
		run, err := tr.Run(fft.Forward)
		if err != nil {
			t.Fatal(err)
		}
		simCycles := run.TotalCycles()
		modelCycles, err := ProjectCycles(cfg, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(simCycles) / float64(modelCycles)
		t.Logf("tcus=%d n=%d: sim %d cycles, model %d cycles (ratio %.2f)",
			tc.tcus, tc.n, simCycles, modelCycles, ratio)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("tcus=%d n=%d: sim/model ratio %.2f outside [0.4, 2.5]", tc.tcus, tc.n, ratio)
		}
	}
}

func TestHostBaselineMeasurable(t *testing.T) {
	if testing.Short() {
		t.Skip("host measurement")
	}
	r, err := baseline.MeasureHost3D(32, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.GFLOPS <= 0 || r.Elapsed <= 0 {
		t.Fatalf("bad measurement: %+v", r)
	}
	rp, err := baseline.MeasureHost3D(32, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rp.GFLOPS <= 0 {
		t.Fatalf("bad parallel measurement: %+v", rp)
	}
}

func TestEnergyVsEdison(t *testing.T) {
	e, err := EnergyVsEdison()
	if err != nil {
		t.Fatal(err)
	}
	// Paper ratios: 375x power at ~1.4x speedup -> ~500x energy per unit
	// of FFT work (we model 18.4 TF, so ~480x).
	if e.EfficiencyRatio < 400 || e.EfficiencyRatio > 600 {
		t.Errorf("energy efficiency ratio = %.0f, want ~500", e.EfficiencyRatio)
	}
	if e.XMTJoulesPerGFLOP <= 0 || e.EdisonJoulesPerGFLOP <= e.XMTJoulesPerGFLOP {
		t.Errorf("energy figures inconsistent: %+v", e)
	}
}

func TestSensitivity(t *testing.T) {
	// At calibrated values (scale 1.0) the worst deviation matches the
	// Table IV test tolerance.
	res, err := Sensitivity([]float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		t.Logf("%-18s worst dev at calibrated values: %.1f%%", r.Param, r.WorstDev*100)
		if r.WorstDev > paperTol {
			t.Errorf("%s: calibrated deviation %.3f exceeds tolerance", r.Param, r.WorstDev)
		}
	}
	// Under ±10% perturbation the traffic parameters stay bounded
	// (<25%): the projection is not a knife-edge fit to them. The one
	// genuinely sensitive parameter is NoCLevelFactor, whose effect
	// compounds over up to 9 butterfly levels (±10% per level is a
	// ±60% swing in effective interconnect bandwidth) — the analysis
	// must rank it most sensitive, which is exactly why DESIGN.md
	// brackets it between the analytic recurrence and the buffered
	// ideal rather than treating it as free.
	res, err = Sensitivity([]float64{0.9, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Param != "NoCLevelFactor" {
		t.Errorf("most sensitive parameter = %s, want NoCLevelFactor", res[0].Param)
	}
	for _, r := range res {
		t.Logf("%-18s worst dev under ±10%%: %.1f%%", r.Param, r.WorstDev*100)
		if r.Param != "NoCLevelFactor" && r.WorstDev > 0.25 {
			t.Errorf("%s: ±10%% perturbation blows up to %.0f%%", r.Param, r.WorstDev*100)
		}
	}
	// projectWith must agree with Project3D at the calibrated point.
	for _, c := range config.Paper() {
		g, err := projectWith(c, PaperN, Calibrated())
		if err != nil {
			t.Fatal(err)
		}
		p, err := Project3D(c, PaperN)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g-p.GFLOPS) > 1e-6*p.GFLOPS {
			t.Errorf("%s: projectWith %.1f != Project3D %.1f", c.Name, g, p.GFLOPS)
		}
	}
}
