// Package model is the analytic performance model that projects the
// paper's 512³ FFT results (Tables IV-VI and Fig. 3) onto each XMT
// configuration. A per-event simulation of the full 18-GFLOP workload is
// infeasible in-process, so — exactly as the paper does with XMTSim —
// the headline numbers come from a model of the machine's binding
// resources, calibrated against the detailed event simulator of
// internal/xmt on sizes where both run (see the cross-validation tests).
//
// Per pass, three times are computed and combined:
//
//   - compute: total FLOPs through clusters × FPUs at 1 FLOP/cycle;
//   - DRAM: bytes moved over the aggregate channel bandwidth, with
//     write-allocate accounting (a streamed store costs a line fetch
//     plus an eventual writeback) and a rotation-pass write
//     amplification for the strided, line-underutilizing writes of the
//     fused FFT+rotation pass;
//   - NoC: word traffic (data + twiddle reads) over the aggregate
//     injection bandwidth derated by a calibrated per-butterfly-level
//     acceptance factor (pure MoT networks are non-blocking).
//
// Pass time = max(compute, sqrt(dram² + noc²)): DRAM and interconnect
// queueing delays compound (requests traverse both in series and the
// queues interact), while compute either hides under memory time or
// dominates outright. The sqrt combination reproduces both the
// bandwidth-bound small configurations and the NoC-choked large ones;
// see DESIGN.md §5 and EXPERIMENTS.md for paper-vs-model numbers.
package model

import (
	"fmt"
	"math"

	"xmtfft/internal/config"
	"xmtfft/internal/core"
	"xmtfft/internal/fft"
)

// Calibration constants (derived in DESIGN.md §5; bytes are per point
// per pass for single-precision complex data).
const (
	// StreamReadBytes: one 8-byte complex read, missing once per line.
	StreamReadBytes = 8
	// StreamWriteBytes: write-allocate fetch + writeback per 8 bytes.
	StreamWriteBytes = 16
	// RotationWriteAmp: fraction of rotated-store lines that are not
	// fully coalesced before eviction, amplifying write traffic.
	RotationWriteAmp = 1.5
	// NoCDataBytes: request words crossing the interconnect per point
	// (8 B loaded + 8 B stored).
	NoCDataBytes = 16
	// NoCLevelFactor is the calibrated per-butterfly-level acceptance
	// under FFT traffic: between the unbuffered 2×2-switch recurrence
	// (≈0.86-0.95 per level in this range) and the buffered ideal 1.0.
	NoCLevelFactor = 0.89
	// RotationNoCFactor derates NoC acceptance during rotation passes,
	// whose converging transpose traffic is harsher than uniform.
	RotationNoCFactor = 1.0
)

// PhasePoint is one marker of Fig. 3: a phase's position in the
// Roofline plane plus its absolute time.
type PhasePoint struct {
	Name         string
	TimeSec      float64
	Flops        float64 // actual FLOPs (Roofline convention, §VI-B)
	DRAMBytes    float64
	ActualGFLOPS float64 // Flops / TimeSec / 1e9
	Intensity    float64 // Flops / DRAMBytes
}

// Projection is the modeled execution of one 3D FFT on one config.
type Projection struct {
	Cfg      config.Config
	N        int    // points per dimension for cubic inputs (= Dims[2])
	Dims     [3]int // full array shape
	Stream   PhasePoint
	Rotation PhasePoint
	Overall  PhasePoint
	// GFLOPS is the headline number under the 5·N·log2(N) convention
	// used by Tables IV-VI.
	GFLOPS float64
}

// TotalPoints returns the array size.
func (p Projection) TotalPoints() int { return p.Dims[0] * p.Dims[1] * p.Dims[2] }

// NoCEffectiveGBs returns the usable aggregate NoC bandwidth of cfg
// under the calibrated acceptance model.
func NoCEffectiveGBs(cfg config.Config) float64 {
	return cfg.AggregateNoCBandwidthGBs() * math.Pow(NoCLevelFactor, float64(cfg.ButterflyLevels))
}

// passModel times one breadth-first pass over total points with the
// given radix.
type passTimes struct {
	compute, dram, noc float64 // seconds
	flops, dramBytes   float64
}

func passTime(cfg config.Config, points float64, radix int, rotation bool) passTimes {
	flopsPerPoint := float64(core.FlopsPerButterfly(radix)) / float64(radix)
	twiddleNoC := 8 * float64(radix-1) / float64(radix) // replicated-table reads

	var t passTimes
	t.flops = flopsPerPoint * points
	wb := float64(StreamWriteBytes)
	if rotation {
		wb *= RotationWriteAmp
	}
	t.dramBytes = (StreamReadBytes + wb) * points

	peakFlops := cfg.PeakGFLOPS() * 1e9
	peakDRAM := cfg.PeakDRAMBandwidthGBs() * 1e9
	nocBW := NoCEffectiveGBs(cfg) * 1e9
	if rotation {
		nocBW *= RotationNoCFactor
	}

	t.compute = t.flops / peakFlops
	t.dram = t.dramBytes / peakDRAM
	t.noc = (NoCDataBytes + twiddleNoC) * points / nocBW
	return t
}

// combine folds the three resource times into a pass duration.
func (t passTimes) combine() float64 {
	mem := math.Sqrt(t.dram*t.dram + t.noc*t.noc)
	return math.Max(t.compute, mem)
}

// Project3D models a single-precision n×n×n FFT on cfg, mirroring the
// kernel's structure: per dimension, log_r(n) breadth-first passes with
// the last pass of each round fused with the axis rotation.
func Project3D(cfg config.Config, n int) (Projection, error) {
	return Project3DDims(cfg, n, n, n)
}

// Project3DDims models a d0×d1×d2 FFT (used by the weak-scaling study,
// whose working sets grow one axis at a time). Rounds transform row
// lengths d2, d1, d0 in the rotation order of the kernel.
func Project3DDims(cfg config.Config, d0, d1, d2 int) (Projection, error) {
	if err := cfg.Validate(); err != nil {
		return Projection{}, err
	}
	points := float64(d0) * float64(d1) * float64(d2)

	var stream, rot PhasePoint
	stream.Name, rot.Name = "non-rotation", "rotation"
	for _, rowLen := range []int{d2, d1, d0} {
		radices, err := fft.Radices(rowLen)
		if err != nil {
			return Projection{}, err
		}
		for p, r := range radices {
			last := p == len(radices)-1
			t := passTime(cfg, points, r, last)
			dst := &stream
			if last {
				dst = &rot
			}
			dst.TimeSec += t.combine()
			dst.Flops += t.flops
			dst.DRAMBytes += t.dramBytes
		}
	}
	finish := func(p *PhasePoint) {
		if p.TimeSec > 0 {
			p.ActualGFLOPS = p.Flops / p.TimeSec / 1e9
		}
		if p.DRAMBytes > 0 {
			p.Intensity = p.Flops / p.DRAMBytes
		}
	}
	finish(&stream)
	finish(&rot)
	overall := PhasePoint{
		Name:      "overall",
		TimeSec:   stream.TimeSec + rot.TimeSec,
		Flops:     stream.Flops + rot.Flops,
		DRAMBytes: stream.DRAMBytes + rot.DRAMBytes,
	}
	finish(&overall)

	std := 5 * points * math.Log2(points)
	return Projection{
		Cfg: cfg, N: d2, Dims: [3]int{d0, d1, d2},
		Stream: stream, Rotation: rot, Overall: overall,
		GFLOPS: std / overall.TimeSec / 1e9,
	}, nil
}

// ProjectCycles returns the modeled cycle count of Project3D at the
// machine clock, for cross-validation against the event simulator.
func ProjectCycles(cfg config.Config, n int) (uint64, error) {
	p, err := Project3D(cfg, n)
	if err != nil {
		return 0, err
	}
	return uint64(p.Overall.TimeSec * config.ClockGHz * 1e9), nil
}

// Roofline describes a configuration's roof for Fig. 3.
type Roofline struct {
	PeakGFLOPS float64
	PeakGBs    float64
	Ridge      float64 // FLOPs/byte where the roof flattens
}

// RooflineOf returns cfg's roofline parameters.
func RooflineOf(cfg config.Config) Roofline {
	return Roofline{
		PeakGFLOPS: cfg.PeakGFLOPS(),
		PeakGBs:    cfg.PeakDRAMBandwidthGBs(),
		Ridge:      cfg.RidgeIntensity(),
	}
}

// Bound returns the roofline ceiling (GFLOPS) at the given intensity.
func (r Roofline) Bound(intensity float64) float64 {
	return math.Min(r.PeakGFLOPS, intensity*r.PeakGBs)
}

func (p Projection) String() string {
	return fmt.Sprintf("%s n=%d: %.0f GFLOPS (5NlogN), overall %.0f GFLOPS actual at %.3f FLOPs/B",
		p.Cfg.Name, p.N, p.GFLOPS, p.Overall.ActualGFLOPS, p.Overall.Intensity)
}
