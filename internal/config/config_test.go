package config

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s = %g, want %g (±%.0f%%)", name, got, want, tol*100)
	}
}

func TestPaperConfigsValidate(t *testing.T) {
	for _, c := range Paper() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

// Table II values must be reproduced exactly.
func TestTableII(t *testing.T) {
	type row struct {
		name                                     string
		tcus, clusters, mms, mot, bfly, mmsPerDC int
		fpus                                     int
	}
	want := []row{
		{Name4K, 4096, 128, 128, 14, 0, 8, 1},
		{Name8K, 8192, 256, 256, 16, 0, 8, 1},
		{Name64K, 65536, 2048, 2048, 8, 7, 8, 1},
		{Name128Kx2, 131072, 4096, 4096, 6, 9, 4, 2},
		{Name128Kx4, 131072, 4096, 4096, 6, 9, 1, 4},
	}
	cfgs := Paper()
	for i, w := range want {
		c := cfgs[i]
		if c.Name != w.name || c.TCUs != w.tcus || c.Clusters != w.clusters ||
			c.MemModules != w.mms || c.MoTLevels != w.mot || c.ButterflyLevels != w.bfly ||
			c.MMsPerDRAMCtrl != w.mmsPerDC || c.FPUsPerCluster != w.fpus {
			t.Errorf("config %d = %+v, want %+v", i, c, w)
		}
		if c.TCUsPerCluster != 32 || c.ALUsPerCluster != 32 || c.MDUsPerCluster != 1 || c.LSUsPerCluster != 1 {
			t.Errorf("%s: shared Table II rows wrong: %+v", c.Name, c)
		}
	}
}

// Table III values must be reproduced exactly.
func TestTableIII(t *testing.T) {
	type row struct {
		name         string
		nm, layers   int
		areaPerLayer float64
		totalArea    float64
	}
	want := []row{
		{Name4K, 22, 1, 227, 227},
		{Name8K, 22, 2, 276, 551},   // paper rounds 552 -> 551
		{Name64K, 22, 8, 380, 3046}, // paper: 3046 (380*8=3040; rounding in source)
		{Name128Kx2, 14, 9, 365, 3284},
		{Name128Kx4, 14, 9, 393, 3540},
	}
	for i, c := range Paper() {
		w := want[i]
		if c.TechnologyNm != w.nm || c.SiliconLayers != w.layers || c.SiAreaPerLayer != w.areaPerLayer {
			t.Errorf("%s physical = (%d nm, %d layers, %g mm2), want (%d, %d, %g)",
				c.Name, c.TechnologyNm, c.SiliconLayers, c.SiAreaPerLayer, w.nm, w.layers, w.areaPerLayer)
		}
		// The published totals include sub-mm2 per-layer rounding; allow 1%.
		approx(t, c.Name+" total area", c.TotalSiAreaMM2(), w.totalArea, 0.01)
	}
}

// Derived balance quantities against figures stated in the paper text.
func TestDerivedQuantities(t *testing.T) {
	// §V-B: 32 DRAM channels need 6.76 Tb/s total.
	c8 := EightK()
	if got := c8.DRAMChannels(); got != 32 {
		t.Fatalf("8k DRAM channels = %d, want 32", got)
	}
	approx(t, "8k off-chip Tb/s", c8.PeakDRAMBandwidthGBs()*8/1000, 6.76, 0.01)

	// Table VI: 128k x4 peak is 54 TFLOPS and 128 MB cache.
	cx4 := OneTwentyEightKx4()
	approx(t, "128k x4 peak TFLOPS", cx4.PeakGFLOPS()/1000, 54, 0.01)
	if got := cx4.TotalCacheBytes(); got != 128*1024*1024 {
		t.Fatalf("128k x4 cache = %d bytes, want 128 MiB", got)
	}
	if got := cx4.DRAMChannels(); got != 4096 {
		t.Fatalf("128k x4 DRAM channels = %d, want 4096", got)
	}

	// §V-D: one NoC port is 165 Gb/s.
	approx(t, "NoC port Gb/s", cx4.NoCPortBandwidthGBs()*8, 165, 0.01)

	// §V-C: 64k has 256 DRAM channels.
	if got := SixtyFourK().DRAMChannels(); got != 256 {
		t.Fatalf("64k DRAM channels = %d, want 256", got)
	}

	// §VI-C: Edison comparison normalizes area to 22 nm; 35.4 cm^2 at
	// 14 nm becomes ~66 cm^2 (paper's own normalization is sub-quadratic;
	// quadratic ideal scaling gives ~87, so just check ordering + range).
	norm := cx4.NormalizedSiAreaMM2(22)
	if norm <= cx4.TotalSiAreaMM2() {
		t.Errorf("normalization to a larger node must grow area: %g <= %g", norm, cx4.TotalSiAreaMM2())
	}
}

func TestRidgeIntensityOrdering(t *testing.T) {
	// 4k/8k/64k are balanced at 1 FLOP/byte ridge; x2 keeps it; x4 has
	// 4x bandwidth per FLOP*2 so its ridge drops -- it is the most
	// bandwidth-rich machine.
	cfgs := Paper()
	for _, c := range cfgs[:3] {
		approx(t, c.Name+" ridge", c.RidgeIntensity(), 1.0, 0.01)
	}
	x2, x4 := cfgs[3], cfgs[4]
	approx(t, "x2 ridge", x2.RidgeIntensity(), 1.0, 0.01)
	approx(t, "x4 ridge", x4.RidgeIntensity(), 0.5, 0.01)
}

func TestByName(t *testing.T) {
	for _, want := range Paper() {
		got, err := ByName(want.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want.Name, err)
		}
		if got.TCUs != want.TCUs {
			t.Errorf("ByName(%q).TCUs = %d, want %d", want.Name, got.TCUs, want.TCUs)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded, want error")
	}
}

func TestScaled(t *testing.T) {
	s, err := FourK().Scaled(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Clusters != 8 || s.MemModules != 8 || s.TCUs != 256 {
		t.Fatalf("scaled = %+v", s)
	}
	if s.FPUsPerCluster != 1 || s.TCUsPerCluster != 32 {
		t.Fatalf("scaled per-cluster resources changed: %+v", s)
	}
	if _, err := FourK().Scaled(33); err == nil {
		t.Error("Scaled(33) succeeded, want error (not a multiple of 32)")
	}
	if _, err := FourK().Scaled(0); err == nil {
		t.Error("Scaled(0) succeeded, want error")
	}
	// Hybrid NoC share is preserved approximately for scaled 64k.
	s64, err := SixtyFourK().Scaled(1024)
	if err != nil {
		t.Fatal(err)
	}
	if s64.ButterflyLevels == 0 {
		t.Error("scaled 64k lost its butterfly levels")
	}
	if s64.MoTLevels+s64.ButterflyLevels != 5 { // log2(32 clusters)
		t.Errorf("scaled 64k NoC levels = %d MoT + %d bfly, want total 5", s64.MoTLevels, s64.ButterflyLevels)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	c := FourK()
	c.TCUs = 100 // not clusters*TCUsPerCluster
	if err := c.Validate(); err == nil {
		t.Error("validate accepted inconsistent TCU count")
	}
	c = FourK()
	c.MemModules = 100 // not a power of two
	c.TCUs = c.Clusters * c.TCUsPerCluster
	if err := c.Validate(); err == nil {
		t.Error("validate accepted non-power-of-two memory modules")
	}
	c = FourK()
	c.MMsPerDRAMCtrl = 3
	if err := c.Validate(); err == nil {
		t.Error("validate accepted indivisible MM/controller ratio")
	}
}

func TestMaxFFTIntensity(t *testing.T) {
	// 128k x4: 128 MB cache = 2^25 words, bound = 0.25*25 = 6.25 FLOPs/B.
	approx(t, "x4 max intensity", OneTwentyEightKx4().MaxFFTIntensity(), 6.25, 0.001)
	// 4k: 128 modules * 32 KiB = 4 MiB = 2^20 words -> 5.0.
	approx(t, "4k max intensity", FourK().MaxFFTIntensity(), 5.0, 0.001)
}

func TestStringIncludesName(t *testing.T) {
	s := FourK().String()
	if len(s) == 0 || s[:2] != "4k" {
		t.Errorf("String() = %q", s)
	}
}
