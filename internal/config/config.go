// Package config defines XMT architecture configurations: the five
// machine sizes evaluated in the paper (Tables II and III) plus support
// for custom configurations. All derived machine-balance quantities
// (peak FLOPS, peak DRAM bandwidth, NoC geometry, cache capacity) are
// computed here so the simulator, the analytic model, and the reporting
// harness agree on a single source of truth.
package config

import (
	"fmt"
	"math/bits"
)

// Architectural constants shared by every configuration, from §V and §VI
// of the paper.
const (
	// ClockGHz is the assumed clock of both XMT and the Xeon reference.
	ClockGHz = 3.3
	// DRAMBytesPerCycle is the per-channel DRAM bandwidth. 32 channels at
	// 8 B/cycle and 3.3 GHz give the paper's 6.76 Tb/s figure (§V-B).
	DRAMBytesPerCycle = 8
	// CacheBytesPerModule is the on-chip cache per memory module:
	// 4096 modules x 32 KiB = 128 MB, matching Table VI.
	CacheBytesPerModule = 32 * 1024
	// CacheLineBytes is the cache line (and DRAM burst) granularity.
	CacheLineBytes = 32
	// NoCPortBits is the width of one NoC port (§V-D: 50 bits at 3.3 GHz
	// is 165 Gb/s per port).
	NoCPortBits = 50
	// FPRegistersPerTCU bounds the largest practical FFT radix (§IV-A):
	// 32 single-precision registers hold 16 complex values, and radix 8
	// leaves room for twiddles and temporaries.
	FPRegistersPerTCU = 32
)

// Config describes one XMT machine configuration (one column of
// Tables II and III).
type Config struct {
	Name string

	// Table II: architecture.
	TCUs            int
	Clusters        int
	MemModules      int
	MoTLevels       int // mesh-of-trees levels in the hybrid NoC
	ButterflyLevels int // butterfly levels replacing inner MoT levels
	MMsPerDRAMCtrl  int // memory modules sharing one DRAM channel
	FPUsPerCluster  int
	TCUsPerCluster  int
	ALUsPerCluster  int
	MDUsPerCluster  int // multiply/divide units
	LSUsPerCluster  int // load/store ports to the NoC

	// Table III: physical.
	TechnologyNm   int
	SiliconLayers  int
	SiAreaPerLayer float64 // mm^2
}

// Standard configuration names.
const (
	Name4K     = "4k"
	Name8K     = "8k"
	Name64K    = "64k"
	Name128Kx2 = "128k x2"
	Name128Kx4 = "128k x4"
)

// common fills the fields shared by all five paper configurations
// (bottom rows of Table II).
func common(c Config) Config {
	c.TCUsPerCluster = 32
	c.ALUsPerCluster = 32
	c.MDUsPerCluster = 1
	c.LSUsPerCluster = 1
	return c
}

// FourK returns the baseline 4096-TCU configuration (§V-A): the largest
// machine fitting one silicon layer at 22 nm; no enabling technologies.
func FourK() Config {
	return common(Config{
		Name: Name4K, TCUs: 4096, Clusters: 128, MemModules: 128,
		MoTLevels: 14, ButterflyLevels: 0, MMsPerDRAMCtrl: 8, FPUsPerCluster: 1,
		TechnologyNm: 22, SiliconLayers: 1, SiAreaPerLayer: 227,
	})
}

// EightK returns the 8192-TCU configuration (§V-B): 3D VLSI, air cooling,
// high-speed serial DRAM interface.
func EightK() Config {
	return common(Config{
		Name: Name8K, TCUs: 8192, Clusters: 256, MemModules: 256,
		MoTLevels: 16, ButterflyLevels: 0, MMsPerDRAMCtrl: 8, FPUsPerCluster: 1,
		TechnologyNm: 22, SiliconLayers: 2, SiAreaPerLayer: 276,
	})
}

// SixtyFourK returns the 65536-TCU configuration (§V-C): microfluidic
// cooling; the NoC becomes a hybrid with 7 butterfly levels.
func SixtyFourK() Config {
	return common(Config{
		Name: Name64K, TCUs: 65536, Clusters: 2048, MemModules: 2048,
		MoTLevels: 8, ButterflyLevels: 7, MMsPerDRAMCtrl: 8, FPUsPerCluster: 1,
		TechnologyNm: 22, SiliconLayers: 8, SiAreaPerLayer: 380,
	})
}

// OneTwentyEightKx2 returns the 131072-TCU configuration with photonic
// off-chip interconnect at 14 nm (§V-D): 2 FPUs per cluster, 4 MMs per
// DRAM controller.
func OneTwentyEightKx2() Config {
	return common(Config{
		Name: Name128Kx2, TCUs: 131072, Clusters: 4096, MemModules: 4096,
		MoTLevels: 6, ButterflyLevels: 9, MMsPerDRAMCtrl: 4, FPUsPerCluster: 2,
		TechnologyNm: 14, SiliconLayers: 9, SiAreaPerLayer: 365,
	})
}

// OneTwentyEightKx4 returns the MFC-cooled-photonics configuration
// (§V-E): one DRAM controller per memory module, 4 FPUs per cluster.
func OneTwentyEightKx4() Config {
	return common(Config{
		Name: Name128Kx4, TCUs: 131072, Clusters: 4096, MemModules: 4096,
		MoTLevels: 6, ButterflyLevels: 9, MMsPerDRAMCtrl: 1, FPUsPerCluster: 4,
		TechnologyNm: 14, SiliconLayers: 9, SiAreaPerLayer: 393,
	})
}

// Paper returns the five configurations of Table II in paper order.
func Paper() []Config {
	return []Config{FourK(), EightK(), SixtyFourK(), OneTwentyEightKx2(), OneTwentyEightKx4()}
}

// ByName returns the standard configuration with the given name.
func ByName(name string) (Config, error) {
	for _, c := range Paper() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("config: unknown configuration %q (want one of 4k, 8k, 64k, 128k x2, 128k x4)", name)
}

// Scaled returns a reduced configuration with the same cluster geometry
// and balance as c but tcus total TCUs, for detailed event simulation at
// tractable scale. Derived counts (clusters, memory modules, DRAM
// channels) shrink proportionally; per-cluster resources are preserved.
func (c Config) Scaled(tcus int) (Config, error) {
	if tcus <= 0 || tcus%c.TCUsPerCluster != 0 {
		return Config{}, fmt.Errorf("config: scaled TCU count %d must be a positive multiple of %d", tcus, c.TCUsPerCluster)
	}
	s := c
	factor := float64(tcus) / float64(c.TCUs)
	s.Name = fmt.Sprintf("%s/%d", c.Name, tcus)
	s.TCUs = tcus
	s.Clusters = tcus / c.TCUsPerCluster
	s.MemModules = s.Clusters
	if s.MemModules < c.MMsPerDRAMCtrl {
		s.MMsPerDRAMCtrl = s.MemModules
	}
	// Keep the same share of butterfly vs MoT levels in the shrunken NoC.
	levels := log2ceil(s.Clusters)
	if c.MoTLevels+c.ButterflyLevels > 0 {
		bfShare := float64(c.ButterflyLevels) / float64(c.MoTLevels+c.ButterflyLevels)
		s.ButterflyLevels = int(bfShare * float64(levels))
	}
	s.MoTLevels = levels - s.ButterflyLevels
	s.SiAreaPerLayer = c.SiAreaPerLayer * factor
	return s, nil
}

// Validate checks internal consistency of a configuration.
func (c Config) Validate() error {
	switch {
	case c.TCUs <= 0, c.Clusters <= 0, c.MemModules <= 0:
		return fmt.Errorf("config %q: TCUs, clusters and memory modules must be positive", c.Name)
	case c.TCUsPerCluster <= 0 || c.TCUs != c.Clusters*c.TCUsPerCluster:
		return fmt.Errorf("config %q: TCUs (%d) must equal clusters (%d) x TCUs/cluster (%d)", c.Name, c.TCUs, c.Clusters, c.TCUsPerCluster)
	case c.MMsPerDRAMCtrl <= 0 || c.MemModules%c.MMsPerDRAMCtrl != 0:
		return fmt.Errorf("config %q: memory modules (%d) must be divisible by MMs per DRAM controller (%d)", c.Name, c.MemModules, c.MMsPerDRAMCtrl)
	case c.FPUsPerCluster <= 0 || c.LSUsPerCluster <= 0:
		return fmt.Errorf("config %q: per-cluster functional units must be positive", c.Name)
	case c.MemModules&(c.MemModules-1) != 0:
		return fmt.Errorf("config %q: memory module count %d must be a power of two for address hashing", c.Name, c.MemModules)
	case c.MoTLevels < 0 || c.ButterflyLevels < 0:
		return fmt.Errorf("config %q: NoC levels must be nonnegative", c.Name)
	}
	return nil
}

// DRAMChannels returns the number of DRAM controllers/channels.
func (c Config) DRAMChannels() int { return c.MemModules / c.MMsPerDRAMCtrl }

// PeakGFLOPS returns the peak single-precision compute rate assuming one
// FLOP per FPU per cycle (verified against Table VI: 128k x4 = 54 TFLOPS).
func (c Config) PeakGFLOPS() float64 {
	return float64(c.Clusters*c.FPUsPerCluster) * ClockGHz
}

// PeakDRAMBandwidthGBs returns the aggregate off-chip bandwidth in GB/s.
func (c Config) PeakDRAMBandwidthGBs() float64 {
	return float64(c.DRAMChannels()*DRAMBytesPerCycle) * ClockGHz
}

// NoCPortBandwidthGBs returns one cluster port's NoC bandwidth in GB/s.
func (c Config) NoCPortBandwidthGBs() float64 {
	return NoCPortBits / 8.0 * ClockGHz
}

// AggregateNoCBandwidthGBs returns total NoC injection bandwidth across
// all cluster ports, before contention.
func (c Config) AggregateNoCBandwidthGBs() float64 {
	return float64(c.Clusters*c.LSUsPerCluster) * c.NoCPortBandwidthGBs()
}

// TotalCacheBytes returns total shared-cache capacity.
func (c Config) TotalCacheBytes() int64 {
	return int64(c.MemModules) * CacheBytesPerModule
}

// TotalSiAreaMM2 returns total silicon area in mm^2 (Table III bottom row).
func (c Config) TotalSiAreaMM2() float64 {
	return float64(c.SiliconLayers) * c.SiAreaPerLayer
}

// NormalizedSiAreaMM2 returns the silicon area normalized to the given
// technology node assuming ideal area scaling with the square of feature
// size, the convention used in Table VI.
func (c Config) NormalizedSiAreaMM2(toNm int) float64 {
	f := float64(toNm) / float64(c.TechnologyNm)
	return c.TotalSiAreaMM2() * f * f
}

// RidgeIntensity returns the roofline ridge point in FLOPs/byte: the
// computational intensity at which the configuration transitions from
// bandwidth-bound to compute-bound.
func (c Config) RidgeIntensity() float64 {
	return c.PeakGFLOPS() / c.PeakDRAMBandwidthGBs()
}

// MaxFFTIntensity returns the paper's upper bound on FFT computational
// intensity, 0.25*log2(S) FLOPs/byte where S is the last-level cache size
// in 4-byte words (§VI-B, citing Elango et al.).
func (c Config) MaxFFTIntensity() float64 {
	words := c.TotalCacheBytes() / 4
	return 0.25 * float64(bits.Len64(uint64(words))-1)
}

func (c Config) String() string {
	return fmt.Sprintf("%s: %d TCUs, %d clusters, %d MMs, %d DRAM ch, NoC %d MoT + %d butterfly, %d FPU/cluster",
		c.Name, c.TCUs, c.Clusters, c.MemModules, c.DRAMChannels(), c.MoTLevels, c.ButterflyLevels, c.FPUsPerCluster)
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
