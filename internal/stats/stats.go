// Package stats collects execution statistics from simulated runs:
// operation counters, per-phase cycle accounting, and GFLOPS computation
// under both the "actual FLOPs" convention (used by the Roofline analysis
// in §VI-B) and the standard 5N·log2(N) FFT convention (used by Tables
// IV-VI).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters tallies the dynamic operation mix of a simulated region.
type Counters struct {
	FPOps       uint64 // floating-point operations executed
	ALUOps      uint64 // integer/address operations
	Loads       uint64 // word loads issued to shared memory
	Stores      uint64 // word stores issued to shared memory
	PSOps       uint64 // prefix-sum unit operations
	Threads     uint64 // threads executed
	Spawns      uint64 // spawn/join regions
	CacheHits   uint64
	CacheMisses uint64
	DRAMBytes   uint64 // bytes transferred on DRAM channels
	NoCPackets  uint64 // packets injected into the interconnect
	Prefetches  uint64 // cache lines fetched speculatively by the prefetcher
	RowHits     uint64 // DRAM accesses that hit an open row buffer
	RowMisses   uint64 // DRAM accesses that had to open a row

	// Fault-injection & resilience tallies (zero unless faults enabled).
	NoCDropped       uint64 // request packets lost in flight
	NoCCorrupted     uint64 // request packets rejected as corrupted
	NoCRetransmits   uint64 // recovery retransmissions sent
	ECCCorrected     uint64 // DRAM single-bit errors corrected by SECDED
	ECCUncorrectable uint64 // DRAM double-bit errors detected, not corrected
	SilentFaults     uint64 // DRAM bit errors with ECC disabled (undetected)
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.FPOps += o.FPOps
	c.ALUOps += o.ALUOps
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.PSOps += o.PSOps
	c.Threads += o.Threads
	c.Spawns += o.Spawns
	c.CacheHits += o.CacheHits
	c.CacheMisses += o.CacheMisses
	c.DRAMBytes += o.DRAMBytes
	c.NoCPackets += o.NoCPackets
	c.Prefetches += o.Prefetches
	c.RowHits += o.RowHits
	c.RowMisses += o.RowMisses
	c.NoCDropped += o.NoCDropped
	c.NoCCorrupted += o.NoCCorrupted
	c.NoCRetransmits += o.NoCRetransmits
	c.ECCCorrected += o.ECCCorrected
	c.ECCUncorrectable += o.ECCUncorrectable
	c.SilentFaults += o.SilentFaults
}

// MemOps returns total shared-memory word operations.
func (c Counters) MemOps() uint64 { return c.Loads + c.Stores }

// HitRate returns the cache hit fraction, or 1 if no accesses occurred.
func (c Counters) HitRate() float64 {
	total := c.CacheHits + c.CacheMisses
	if total == 0 {
		return 1
	}
	return float64(c.CacheHits) / float64(total)
}

// Util is the fraction of available slots used per resource over a
// phase (0..1; the resource near 1 is the binding one). It is filled by
// the detailed simulator from before/after snapshots and carried through
// the JSON/CSV export so a Fig.-3-style breakdown can name the
// bottleneck of every phase, not just its cycle count.
type Util struct {
	FPU  float64
	LSU  float64
	DRAM float64
}

// Phase is one timed region of a computation (e.g. one FFT pass, or the
// aggregate rotation vs non-rotation split of Fig. 3).
type Phase struct {
	Name   string
	Cycles uint64
	Ops    Counters
	Util   Util
}

// Intensity returns the phase's computational intensity in FLOPs per
// DRAM byte, the x-coordinate of the Roofline plot. Phases that move no
// DRAM data return +Inf (purely compute-bound).
func (p Phase) Intensity() float64 {
	if p.Ops.DRAMBytes == 0 {
		return math.Inf(1)
	}
	return float64(p.Ops.FPOps) / float64(p.Ops.DRAMBytes)
}

// GFLOPS returns achieved GFLOPS at the given clock using actual FLOPs.
func (p Phase) GFLOPS(clockGHz float64) float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.Ops.FPOps) / float64(p.Cycles) * clockGHz
}

// Run aggregates the phases of one simulated computation.
type Run struct {
	Label  string
	Phases []Phase
}

// TotalCycles sums cycles across phases.
func (r Run) TotalCycles() uint64 {
	var t uint64
	for _, p := range r.Phases {
		t += p.Cycles
	}
	return t
}

// TotalOps sums counters across phases.
func (r Run) TotalOps() Counters {
	var c Counters
	for _, p := range r.Phases {
		c.Add(p.Ops)
	}
	return c
}

// Merged returns the named phases merged into one (summing cycles and
// counters); phases not matching any name are ignored. Used to build the
// rotation / non-rotation split of Fig. 3 from per-pass phases.
func (r Run) Merged(name string, match func(Phase) bool) Phase {
	out := Phase{Name: name}
	for _, p := range r.Phases {
		if match(p) {
			out.Cycles += p.Cycles
			out.Ops.Add(p.Ops)
			// Cycle-weighted utilization: a long bandwidth-bound pass should
			// dominate the merged figure over a short compute-bound one.
			out.Util.FPU += p.Util.FPU * float64(p.Cycles)
			out.Util.LSU += p.Util.LSU * float64(p.Cycles)
			out.Util.DRAM += p.Util.DRAM * float64(p.Cycles)
		}
	}
	if out.Cycles > 0 {
		out.Util.FPU /= float64(out.Cycles)
		out.Util.LSU /= float64(out.Cycles)
		out.Util.DRAM /= float64(out.Cycles)
	}
	return out
}

// Overall returns all phases merged, labeled "overall".
func (r Run) Overall() Phase {
	return r.Merged("overall", func(Phase) bool { return true })
}

// GFLOPS returns whole-run achieved GFLOPS using actual FLOPs.
func (r Run) GFLOPS(clockGHz float64) float64 { return r.Overall().GFLOPS(clockGHz) }

// StandardFFTFlops returns the conventional FLOP count 5·N·log2(N) for an
// N-point FFT, the normalization used throughout the paper's speedup
// tables ("to allow comparison with other work", §VI).
func StandardFFTFlops(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// StandardGFLOPS converts a cycle count for an N-point FFT into GFLOPS
// under the 5N·log2(N) convention at the given clock.
func StandardGFLOPS(n int, cycles uint64, clockGHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	return StandardFFTFlops(n) / float64(cycles) * clockGHz
}

// Seconds converts cycles to seconds at the given clock rate.
func Seconds(cycles uint64, clockGHz float64) float64 {
	return float64(cycles) / (clockGHz * 1e9)
}

func (r Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run %s: %d cycles\n", r.Label, r.TotalCycles())
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  %-24s %12d cycles  %12d flops  %10d dram bytes\n",
			p.Name, p.Cycles, p.Ops.FPOps, p.Ops.DRAMBytes)
	}
	return b.String()
}

// Histogram is a simple fixed-bucket histogram used for queueing-delay
// and utilization reporting in the simulator.
type Histogram struct {
	BucketWidth uint64
	counts      map[uint64]uint64
	total       uint64
	sum         uint64
	sumSq       float64
	max         uint64
}

// NewHistogram returns a histogram with the given bucket width in cycles.
func NewHistogram(bucketWidth uint64) *Histogram {
	if bucketWidth == 0 {
		bucketWidth = 1
	}
	return &Histogram{BucketWidth: bucketWidth, counts: make(map[uint64]uint64)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.counts[v/h.BucketWidth]++
	h.total++
	h.sum += v
	h.sumSq += float64(v) * float64(v)
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Merge folds all of o's samples into h. The bucket widths must match:
// merging histograms of different granularity would silently misbucket.
// Used to reduce per-shard recorder histograms into one stream at a
// parallel section's join.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	if o.BucketWidth != h.BucketWidth {
		panic("stats: merging histograms with different bucket widths")
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	h.total += o.total
	h.sum += o.sum
	h.sumSq += o.sumSq
	if o.max > h.max {
		h.max = o.max
	}
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max }

// Stddev returns the population standard deviation of the samples
// (0 when fewer than two samples have been observed).
func (h *Histogram) Stddev() float64 {
	if h.total < 2 {
		return 0
	}
	mean := h.Mean()
	v := h.sumSq/float64(h.total) - mean*mean
	if v < 0 {
		v = 0 // guard against floating-point cancellation
	}
	return math.Sqrt(v)
}

// Quantile returns an upper bound on the q-quantile (0<=q<=1) using
// bucket upper edges, clamped to the largest observed sample so the
// reported bound never exceeds anything that actually happened.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	type bucket struct{ idx, n uint64 }
	buckets := make([]bucket, 0, len(h.counts))
	for i, n := range h.counts {
		buckets = append(buckets, bucket{i, n})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].idx < buckets[j].idx })
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	clamp := func(edge uint64) uint64 {
		if edge > h.max {
			return h.max
		}
		return edge
	}
	var seen uint64
	for _, b := range buckets {
		seen += b.n
		if seen >= target {
			return clamp((b.idx + 1) * h.BucketWidth)
		}
	}
	return clamp((buckets[len(buckets)-1].idx + 1) * h.BucketWidth)
}

// Summary returns a one-line count/mean/p50/p95/max digest, the format
// used by the trace package's plain-text reports.
func (h *Histogram) Summary() string {
	if h.total == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d max=%d",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.max)
}
