package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Export formats for Run records, so detailed-simulation results can be
// consumed by external tooling (spreadsheets, plotting scripts).

// runJSON is the serialized shape of a Run.
type runJSON struct {
	Label  string      `json:"label"`
	Cycles uint64      `json:"total_cycles"`
	Phases []phaseJSON `json:"phases"`
}

type phaseJSON struct {
	Name       string  `json:"name"`
	Cycles     uint64  `json:"cycles"`
	FPOps      uint64  `json:"fp_ops"`
	ALUOps     uint64  `json:"alu_ops"`
	Loads      uint64  `json:"loads"`
	Stores     uint64  `json:"stores"`
	Threads    uint64  `json:"threads"`
	DRAMBytes  uint64  `json:"dram_bytes"`
	HitRate    float64 `json:"cache_hit_rate"`
	Intensity  float64 `json:"intensity_flops_per_byte"`
	Prefetches uint64  `json:"prefetches"`
	RowHits    uint64  `json:"row_hits"`
	RowMisses  uint64  `json:"row_misses"`
	FPUUtil    float64 `json:"fpu_util"`
	LSUUtil    float64 `json:"lsu_util"`
	DRAMUtil   float64 `json:"dram_util"`
}

// WriteJSON serializes the run as indented JSON.
func (r Run) WriteJSON(w io.Writer) error {
	out := runJSON{Label: r.Label, Cycles: r.TotalCycles()}
	for _, p := range r.Phases {
		pj := phaseJSON{
			Name: p.Name, Cycles: p.Cycles, FPOps: p.Ops.FPOps,
			ALUOps: p.Ops.ALUOps, Loads: p.Ops.Loads, Stores: p.Ops.Stores,
			Threads: p.Ops.Threads, DRAMBytes: p.Ops.DRAMBytes,
			HitRate:    p.Ops.HitRate(),
			Prefetches: p.Ops.Prefetches, RowHits: p.Ops.RowHits, RowMisses: p.Ops.RowMisses,
			FPUUtil: p.Util.FPU, LSUUtil: p.Util.LSU, DRAMUtil: p.Util.DRAM,
		}
		if p.Ops.DRAMBytes > 0 {
			pj.Intensity = p.Intensity()
		}
		out.Phases = append(out.Phases, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV serializes the per-phase record as CSV with a header row.
func (r Run) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"phase", "cycles", "fp_ops", "alu_ops", "loads", "stores",
		"threads", "dram_bytes", "cache_hit_rate",
		"prefetches", "row_hits", "row_misses",
		"fpu_util", "lsu_util", "dram_util"}); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, p := range r.Phases {
		rec := []string{
			p.Name, u(p.Cycles), u(p.Ops.FPOps), u(p.Ops.ALUOps),
			u(p.Ops.Loads), u(p.Ops.Stores), u(p.Ops.Threads),
			u(p.Ops.DRAMBytes), fmt.Sprintf("%.4f", p.Ops.HitRate()),
			u(p.Ops.Prefetches), u(p.Ops.RowHits), u(p.Ops.RowMisses),
			fmt.Sprintf("%.4f", p.Util.FPU), fmt.Sprintf("%.4f", p.Util.LSU),
			fmt.Sprintf("%.4f", p.Util.DRAM),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
