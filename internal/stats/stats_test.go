package stats

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{FPOps: 1, ALUOps: 2, Loads: 3, Stores: 4, PSOps: 5, Threads: 6,
		Spawns: 7, CacheHits: 8, CacheMisses: 9, DRAMBytes: 10, NoCPackets: 11,
		Prefetches: 12, RowHits: 13, RowMisses: 14}
	b := a
	a.Add(b)
	if a.FPOps != 2 || a.NoCPackets != 22 || a.MemOps() != 14 {
		t.Fatalf("after Add: %+v", a)
	}
	if a.Prefetches != 24 || a.RowHits != 26 || a.RowMisses != 28 {
		t.Fatalf("memory counters after Add: %+v", a)
	}
}

func TestHitRate(t *testing.T) {
	c := Counters{CacheHits: 3, CacheMisses: 1}
	if got := c.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %g, want 0.75", got)
	}
	if got := (Counters{}).HitRate(); got != 1 {
		t.Fatalf("empty hit rate = %g, want 1", got)
	}
}

func TestPhaseIntensityAndGFLOPS(t *testing.T) {
	p := Phase{Name: "pass", Cycles: 1000, Ops: Counters{FPOps: 1500, DRAMBytes: 1600}}
	if got := p.Intensity(); math.Abs(got-0.9375) > 1e-12 {
		t.Fatalf("intensity = %g, want 0.9375", got)
	}
	// 1500 flops / 1000 cycles at 3.3 GHz = 4.95 GFLOPS.
	if got := p.GFLOPS(3.3); math.Abs(got-4.95) > 1e-9 {
		t.Fatalf("gflops = %g, want 4.95", got)
	}
	inf := Phase{Ops: Counters{FPOps: 10}}
	if !math.IsInf(inf.Intensity(), 1) {
		t.Fatal("zero-byte phase should have infinite intensity")
	}
	if (Phase{}).GFLOPS(3.3) != 0 {
		t.Fatal("zero-cycle phase should report 0 GFLOPS")
	}
}

func TestRunAggregation(t *testing.T) {
	r := Run{Label: "t", Phases: []Phase{
		{Name: "fft pass 0", Cycles: 10, Ops: Counters{FPOps: 100, DRAMBytes: 50}},
		{Name: "rotate pass 2", Cycles: 30, Ops: Counters{FPOps: 200, DRAMBytes: 400}},
		{Name: "fft pass 1", Cycles: 20, Ops: Counters{FPOps: 300, DRAMBytes: 100}},
	}}
	if r.TotalCycles() != 60 {
		t.Fatalf("total cycles = %d", r.TotalCycles())
	}
	if ops := r.TotalOps(); ops.FPOps != 600 || ops.DRAMBytes != 550 {
		t.Fatalf("total ops = %+v", ops)
	}
	rot := r.Merged("rotation", func(p Phase) bool { return strings.HasPrefix(p.Name, "rotate") })
	if rot.Cycles != 30 || rot.Ops.FPOps != 200 {
		t.Fatalf("rotation merge = %+v", rot)
	}
	all := r.Overall()
	if all.Cycles != 60 || all.Ops.FPOps != 600 {
		t.Fatalf("overall = %+v", all)
	}
	if !strings.Contains(r.String(), "fft pass 0") {
		t.Errorf("String() missing phase: %q", r.String())
	}
}

func TestStandardFFTFlops(t *testing.T) {
	// 512^3 = 2^27 points: 5 * 2^27 * 27 = 18.12 GFLOP, the figure behind
	// Table IV.
	n := 512 * 512 * 512
	got := StandardFFTFlops(n)
	want := 5.0 * float64(n) * 27.0
	if math.Abs(got-want) > 1 {
		t.Fatalf("StandardFFTFlops(512^3) = %g, want %g", got, want)
	}
	if StandardFFTFlops(1) != 0 || StandardFFTFlops(0) != 0 {
		t.Fatal("degenerate sizes should yield 0 flops")
	}
}

func TestStandardGFLOPS(t *testing.T) {
	// If the 18.12 GFLOP FFT takes 0.25e9 cycles at 3.3 GHz (75.76 ms),
	// that is 239.2 GFLOPS -- the paper's 4k figure.
	n := 512 * 512 * 512
	cycles := uint64(250_000_000)
	got := StandardGFLOPS(n, cycles, 3.3)
	want := StandardFFTFlops(n) / float64(cycles) * 3.3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("StandardGFLOPS = %g, want %g", got, want)
	}
	if got < 230 || got > 250 {
		t.Fatalf("sanity: got %g GFLOPS, expected near 239", got)
	}
	if StandardGFLOPS(n, 0, 3.3) != 0 {
		t.Fatal("zero cycles should yield 0")
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(3_300_000_000, 3.3); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Seconds = %g, want 1.0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []uint64{0, 5, 9, 10, 25, 99} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 99 {
		t.Fatalf("max = %d", h.Max())
	}
	if got, want := h.Mean(), (0.0+5+9+10+25+99)/6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", got, want)
	}
	// Median: 3rd of 6 samples lives in bucket [0,10) -> upper edge 10.
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("median bound = %d, want 10", q)
	}
	// The top bucket's upper edge (100) is clamped to the largest observed
	// sample: a reported p100 must be something that actually happened.
	if q := h.Quantile(1.0); q != 99 {
		t.Fatalf("p100 bound = %d, want 99", q)
	}
	if NewHistogram(0).BucketWidth != 1 {
		t.Fatal("zero bucket width should default to 1")
	}
	if (NewHistogram(4)).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(10), NewHistogram(10)
	for _, v := range []uint64{0, 5, 9} {
		a.Observe(v)
	}
	for _, v := range []uint64{10, 25, 99} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 6 || a.Max() != 99 {
		t.Fatalf("merged count/max = %d/%d, want 6/99", a.Count(), a.Max())
	}
	if got, want := a.Mean(), (0.0+5+9+10+25+99)/6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged mean = %g, want %g", got, want)
	}
	// b is untouched by the merge.
	if b.Count() != 3 || b.Max() != 99 {
		t.Fatalf("source histogram mutated: count=%d max=%d", b.Count(), b.Max())
	}
}

func TestHistogramMergeMismatchedWidths(t *testing.T) {
	a := NewHistogram(10)
	a.Observe(5)

	// A nil or empty source is a no-op even with a different bucket
	// width — the emptiness check deliberately precedes the width check,
	// so zero-valued histograms from unrelated accumulators merge away
	// harmlessly.
	a.Merge(nil)
	a.Merge(NewHistogram(7))
	if a.Count() != 1 {
		t.Fatalf("no-op merges changed the histogram: count=%d", a.Count())
	}

	// A non-empty source with a different width is a programming error
	// and must panic rather than silently misbinning.
	other := NewHistogram(7)
	other.Observe(3)
	defer func() {
		if recover() == nil {
			t.Fatal("merging non-empty histograms with different bucket widths did not panic")
		}
	}()
	a.Merge(other)
}

func TestHistogramStddev(t *testing.T) {
	h := NewHistogram(1)
	for _, v := range []uint64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	// Classic example: mean 5, population stddev exactly 2.
	if got := h.Stddev(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("stddev = %g, want 2", got)
	}
	if NewHistogram(1).Stddev() != 0 {
		t.Fatal("empty histogram stddev should be 0")
	}
	one := NewHistogram(1)
	one.Observe(42)
	if one.Stddev() != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []uint64{0, 5, 9, 10, 25, 99} {
		h.Observe(v)
	}
	s := h.Summary()
	for _, want := range []string{"n=6", "mean=24.7", "p50=10", "max=99"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary() = %q, missing %q", s, want)
		}
	}
	if NewHistogram(1).Summary() != "n=0" {
		t.Fatalf("empty summary = %q", NewHistogram(1).Summary())
	}
}

// Property: quantile bounds are monotone in q and bound the max.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(8)
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		if len(vals) == 0 {
			return h.Quantile(0.9) == 0
		}
		q50, q90, q100 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(1)
		return q50 <= q90 && q90 <= q100 && q100 >= h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging all phases preserves totals.
func TestMergePreservesTotalsProperty(t *testing.T) {
	f := func(cycles []uint32, flops []uint32) bool {
		n := len(cycles)
		if len(flops) < n {
			n = len(flops)
		}
		r := Run{}
		var wantC, wantF uint64
		for i := 0; i < n; i++ {
			r.Phases = append(r.Phases, Phase{
				Cycles: uint64(cycles[i]),
				Ops:    Counters{FPOps: uint64(flops[i])},
			})
			wantC += uint64(cycles[i])
			wantF += uint64(flops[i])
		}
		all := r.Overall()
		return all.Cycles == wantC && all.Ops.FPOps == wantF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExportJSON(t *testing.T) {
	r := Run{Label: "x", Phases: []Phase{
		{Name: "fft p0", Cycles: 100, Ops: Counters{FPOps: 500, DRAMBytes: 800, CacheHits: 3, CacheMisses: 1}},
		{Name: "rotate", Cycles: 50, Ops: Counters{FPOps: 100}},
	}}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["total_cycles"].(float64) != 150 {
		t.Errorf("total_cycles = %v", decoded["total_cycles"])
	}
	phases := decoded["phases"].([]any)
	if len(phases) != 2 {
		t.Fatalf("phases = %d", len(phases))
	}
	p0 := phases[0].(map[string]any)
	if p0["intensity_flops_per_byte"].(float64) != 0.625 {
		t.Errorf("intensity = %v", p0["intensity_flops_per_byte"])
	}
	if p0["cache_hit_rate"].(float64) != 0.75 {
		t.Errorf("hit rate = %v", p0["cache_hit_rate"])
	}
}

func TestRunExportCSV(t *testing.T) {
	r := Run{Label: "x", Phases: []Phase{
		{Name: "a", Cycles: 10, Ops: Counters{Loads: 5}},
		{Name: "b", Cycles: 20, Ops: Counters{Stores: 7}},
	}}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(strings.NewReader(b.String()))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "phase" || recs[1][0] != "a" || recs[2][6] != "0" {
		t.Errorf("unexpected CSV content: %v", recs)
	}
}

func TestMergedUtilIsCycleWeighted(t *testing.T) {
	r := Run{Phases: []Phase{
		{Name: "a", Cycles: 10, Util: Util{FPU: 0.9, DRAM: 0.1}},
		{Name: "b", Cycles: 30, Util: Util{FPU: 0.1, DRAM: 0.9}},
	}}
	all := r.Overall()
	// (0.9*10 + 0.1*30)/40 = 0.3 and symmetrically 0.7 for DRAM.
	if math.Abs(all.Util.FPU-0.3) > 1e-12 || math.Abs(all.Util.DRAM-0.7) > 1e-12 {
		t.Fatalf("merged util = %+v", all.Util)
	}
	empty := Run{}.Overall()
	if empty.Util != (Util{}) {
		t.Fatalf("empty merge util = %+v", empty.Util)
	}
}

func TestExportIncludesMemoryAndUtilColumns(t *testing.T) {
	r := Run{Label: "x", Phases: []Phase{{
		Name: "p", Cycles: 100,
		Ops:  Counters{Prefetches: 4, RowHits: 9, RowMisses: 3},
		Util: Util{FPU: 0.5, LSU: 0.25, DRAM: 0.75},
	}}}

	var jb strings.Builder
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(jb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	p0 := decoded["phases"].([]any)[0].(map[string]any)
	for key, want := range map[string]float64{
		"prefetches": 4, "row_hits": 9, "row_misses": 3,
		"fpu_util": 0.5, "lsu_util": 0.25, "dram_util": 0.75,
	} {
		if got := p0[key].(float64); got != want {
			t.Errorf("JSON %s = %v, want %v", key, got, want)
		}
	}

	var cb strings.Builder
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(cb.String())).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	header, row := recs[0], recs[1]
	want := map[string]string{
		"prefetches": "4", "row_hits": "9", "row_misses": "3",
		"fpu_util": "0.5000", "lsu_util": "0.2500", "dram_util": "0.7500",
	}
	found := 0
	for i, col := range header {
		if w, ok := want[col]; ok {
			found++
			if row[i] != w {
				t.Errorf("CSV %s = %q, want %q", col, row[i], w)
			}
		}
	}
	if found != len(want) {
		t.Errorf("CSV header %v missing expected columns", header)
	}
}
