// Package mem models the XMT shared-memory system: a global address
// space hashed across memory modules (MMs), each comprising an on-chip
// cache slice in front of a (possibly shared) DRAM channel, as described
// in §II-A of the paper. The model is timing-only: simulated data values
// live in the workload's own Go slices, while this package answers "when
// does this access complete and what did it cost".
//
// First-order effects modeled, matching the paper's analysis:
//   - each MM accepts one access per cycle, so concurrent accesses to the
//     same module (and in particular to the same location, e.g. a shared
//     twiddle table entry) are queued;
//   - cache misses fetch whole lines (CacheLineBytes), so strided access
//     (the FFT rotation phase) pays line-granularity overfetch;
//   - several MMs may share one DRAM controller (8/4/1 depending on the
//     configuration), bounding off-chip bandwidth;
//   - dirty evictions consume writeback bandwidth.
//
// Sharding: all mutable state and statistics are per-module or
// per-channel, and AccessModule / PrefetchInto touch exactly one module
// plus its channel. A caller that partitions modules so that modules
// sharing a DRAM channel stay together (see ChannelOf) may therefore
// drive disjoint module sets from concurrent shards without locks; the
// aggregate statistics methods (Hits, Misses, ...) are only safe when
// the shards are quiescent, e.g. at a synchronization barrier.
package mem

import (
	"fmt"

	"xmtfft/internal/config"
	"xmtfft/internal/fault"
	"xmtfft/internal/sim"
)

// Timing constants (cycles). These are micro-architecture calibration
// parameters, not published figures; see DESIGN.md §5.
const (
	// CacheHitLatency is the cache-slice access latency on a hit.
	CacheHitLatency = 3
	// DRAMAccessLatency is the fixed DRAM access latency added to a miss
	// (~30 ns at 3.3 GHz).
	DRAMAccessLatency = 100
	// lineTransferCycles is the channel occupancy of one line transfer:
	// CacheLineBytes / DRAMBytesPerCycle.
	lineTransferCycles = config.CacheLineBytes / config.DRAMBytesPerCycle
	// RowBytes is the DRAM row-buffer (page) size per channel.
	RowBytes = 2048
	// RowActivateCycles is the extra latency of opening a new row. With
	// enough banks, activates overlap transfers, so the penalty is
	// latency-only (channel occupancy is unaffected) — consistent with
	// the sustained-bandwidth calibration of the analytic model.
	RowActivateCycles = 24
	// ECCCorrectCycles is the SECDED correction pipeline penalty added
	// to a line fetch whose data arrived with a (correctable)
	// single-bit error. Error-free fetches pay nothing: detection
	// happens in the syndrome pipeline overlapped with the transfer.
	ECCCorrectCycles = 8
)

// HashAddress maps a byte address to a memory module index. The XMT
// design hashes the global address space across MMs at cache-line
// granularity; we use a Fibonacci (multiplicative) hash so that both
// unit-stride and large-power-of-two-stride streams spread evenly, which
// is the property the real hash is chosen for.
func HashAddress(addr uint64, modules int) int {
	line := addr / config.CacheLineBytes
	h := line * 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	return int(h >> 32 % uint64(modules))
}

// Fault classifies the DRAM bit-error outcome of one access (fault
// injection; see EnableFaults). FaultNone on every access when fault
// injection is off.
type Fault uint8

const (
	// FaultNone: the access was error-free.
	FaultNone Fault = iota
	// FaultECCCorrected: the fetched line had a single-bit error that
	// SECDED corrected, at an ECCCorrectCycles latency penalty.
	FaultECCCorrected
	// FaultECCUncorrectable: the fetched line had a double-bit error;
	// SECDED detects it but cannot correct. The event is reported for
	// the machine to account (in this timing-directed model the data
	// itself lives host-side and is not perturbed).
	FaultECCUncorrectable
	// FaultSilent: a bit error occurred with ECC disabled — nothing in
	// the modeled hardware noticed; the simulator tallies it so the
	// cost of protection can be weighed against the exposure without it.
	FaultSilent
)

// AccessResult reports the outcome of one timed memory access.
type AccessResult struct {
	Done   uint64 // cycle at which the value is available / committed
	Hit    bool   // whether the access hit in the module's cache slice
	Module int    // memory module that served it
	Fault  Fault  // DRAM bit-error outcome (FaultNone unless injecting)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// channel is one DRAM channel: a bandwidth port plus an open-row
// register modeling the row buffer. Statistics live here (not on the
// System) so that shards owning disjoint channel sets never share
// counters.
type channel struct {
	port    sim.Port
	openRow uint64
	hasRow  bool
	// RowHits and RowMisses count row-buffer outcomes.
	RowHits, RowMisses uint64
	// Bytes counts DRAM traffic through this channel.
	Bytes uint64
}

// transfer schedules one line transfer of the line containing addr,
// returning (grant cycle, extra latency from a row activate).
func (ch *channel) transfer(t uint64, addr uint64) (uint64, uint64) {
	g := ch.port.GrantN(t, lineTransferCycles)
	ch.Bytes += config.CacheLineBytes
	row := addr / RowBytes
	var extra uint64
	if ch.hasRow && ch.openRow == row {
		ch.RowHits++
	} else {
		ch.RowMisses++
		extra = RowActivateCycles
		ch.openRow = row
		ch.hasRow = true
	}
	return g, extra
}

// module is one memory module: a set-associative cache slice plus a
// port, with its own hit/miss/queueing statistics.
type module struct {
	port    sim.Port
	sets    [][]line
	setMask uint64
	channel *channel // shared DRAM channel
	useTick uint64

	hits       uint64
	misses     uint64
	writebacks uint64
	queueDelay uint64
	prefetches uint64

	// Fault-injection state (nil stream = injection off for this
	// module). The stream is per-module so concurrent shards draw
	// independently and each module's error sequence depends only on
	// its own access order — deterministic for any worker count.
	faultStream  *fault.Stream
	eccCorrected uint64
	eccUncorrect uint64
	silentFaults uint64
}

// System is the whole memory system for one machine configuration.
type System struct {
	cfg      config.Config
	modules  []*module
	channels []*channel

	// Prefetch enables a next-line prefetcher in each memory module
	// (§II-A lists prefetching among XMT's performance enhancements): a
	// demand miss also fetches the following line if absent, hiding the
	// DRAM latency of streaming access at the cost of overfetch on
	// irregular patterns. Off by default so traffic accounting matches
	// the analytic model; the prefetch ablation turns it on.
	Prefetch bool

	// Fault-injection parameters, immutable after EnableFaults (set
	// before simulation starts; read concurrently by shards).
	ber     float64 // per-line-fetch single-bit error probability
	dber    float64 // per-line-fetch double-bit error probability
	eccOn   bool
	faulted bool
}

// NewSystem builds the memory system for cfg. The cache geometry is
// CacheBytesPerModule split into CacheLineBytes lines, 4-way associative.
func NewSystem(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := config.CacheBytesPerModule / config.CacheLineBytes
	const ways = 4
	sets := lines / ways
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: cache geometry gives %d sets; want a power of two", sets)
	}
	s := &System{cfg: cfg}
	s.channels = make([]*channel, cfg.DRAMChannels())
	for i := range s.channels {
		s.channels[i] = &channel{port: sim.Port{Width: 1}}
	}
	s.modules = make([]*module, cfg.MemModules)
	for i := range s.modules {
		m := &module{setMask: uint64(sets - 1), channel: s.channels[i/cfg.MMsPerDRAMCtrl]}
		m.sets = make([][]line, sets)
		backing := make([]line, sets*ways)
		for j := range m.sets {
			m.sets[j], backing = backing[:ways], backing[ways:]
		}
		s.modules[i] = m
	}
	return s, nil
}

// Config returns the configuration the system was built for.
func (s *System) Config() config.Config { return s.cfg }

// Modules returns the number of memory modules.
func (s *System) Modules() int { return len(s.modules) }

// ChannelOf returns the DRAM channel index serving module mi. Shard
// partitions must keep all modules of one channel on the same shard,
// because the channel port and row-buffer state are shared among them.
func (s *System) ChannelOf(mi int) int { return mi / s.cfg.MMsPerDRAMCtrl }

// Access performs one word access to addr arriving at its memory module
// at cycle t (NoC traversal time is the caller's concern) and returns
// when it completes. Write accesses allocate on miss (fetch-on-write)
// and mark the line dirty. This is the serial-engine entry point: with
// prefetching enabled the miss path fills the next line immediately,
// wherever it hashes to.
func (s *System) Access(t uint64, addr uint64, write bool) AccessResult {
	mi := HashAddress(addr, len(s.modules))
	res, missStart := s.accessModule(mi, t, addr, write)
	if s.Prefetch && !res.Hit {
		next := addr + config.CacheLineBytes
		s.PrefetchInto(HashAddress(next, len(s.modules)), missStart, next)
	}
	return res
}

// AccessModule performs one word access to addr at module mi (the
// caller has already hashed the address), touching only that module and
// its DRAM channel — the shard-safe request path. It never prefetches:
// in sharded operation the next line usually lives on another shard, so
// the caller turns the miss into a boundary message and later calls
// PrefetchInto on the owning shard.
func (s *System) AccessModule(mi int, t uint64, addr uint64, write bool) AccessResult {
	res, _ := s.accessModule(mi, t, addr, write)
	return res
}

func (s *System) accessModule(mi int, t uint64, addr uint64, write bool) (AccessResult, uint64) {
	m := s.modules[mi]

	grant := m.port.Grant(t)
	m.queueDelay += grant - t

	tag := addr / config.CacheLineBytes
	set := m.sets[tag&m.setMask]
	m.useTick++

	// Hit path.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = m.useTick
			if write {
				set[i].dirty = true
			}
			m.hits++
			return AccessResult{Done: grant + CacheHitLatency, Hit: true, Module: mi}, 0
		}
	}

	// Miss: choose LRU victim, write back if dirty, fetch the line.
	m.misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	start := grant + CacheHitLatency // tag check before channel request
	if set[victim].valid && set[victim].dirty {
		// Writeback occupies the channel but the demand fetch need not
		// wait for its completion beyond channel serialization.
		victimAddr := set[victim].tag * config.CacheLineBytes
		m.channel.transfer(start, victimAddr)
		m.writebacks++
	}
	fetch, activate := m.channel.transfer(start, addr)
	done := fetch + lineTransferCycles + DRAMAccessLatency + activate

	// Fault injection: one Bernoulli draw per line fetch from the
	// module's own stream decides error-free / single-bit / double-bit.
	// Single draws split the interval so protection settings never
	// change the error sequence, only its handling.
	var fv Fault
	if m.faultStream != nil {
		u := m.faultStream.Float64()
		switch {
		case u < s.dber:
			if s.eccOn {
				fv = FaultECCUncorrectable
				m.eccUncorrect++
			} else {
				fv = FaultSilent
				m.silentFaults++
			}
		case u < s.dber+s.ber:
			if s.eccOn {
				fv = FaultECCCorrected
				m.eccCorrected++
				done += ECCCorrectCycles
			} else {
				fv = FaultSilent
				m.silentFaults++
			}
		}
	}

	set[victim] = line{tag: tag, valid: true, dirty: write, used: m.useTick}

	return AccessResult{Done: done, Hit: false, Module: mi, Fault: fv}, start
}

// PrefetchInto fills the line containing addr into module mi (which the
// caller has determined by hashing) if absent, starting the channel
// transfer at cycle t. The demand access that triggered it does not
// wait; the fill consumes channel bandwidth and a cache way like any
// other fill. Touches only module mi and its channel.
func (s *System) PrefetchInto(mi int, t uint64, addr uint64) {
	m := s.modules[mi]
	tag := addr / config.CacheLineBytes
	set := m.sets[tag&m.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return // already resident
		}
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		victimAddr := set[victim].tag * config.CacheLineBytes
		m.channel.transfer(t, victimAddr)
		m.writebacks++
	}
	m.channel.transfer(t, addr)
	m.prefetches++
	m.useTick++
	set[victim] = line{tag: tag, valid: true, used: m.useTick}
}

// EnableFaults arms DRAM bit-error injection: every demand line fetch
// draws once from its module's (seed, DomainDRAM, module) stream and
// suffers a single-bit error with probability ber or a double-bit
// error with probability dber. With ecc true the SECDED model corrects
// single-bit errors (adding ECCCorrectCycles to the fetch) and reports
// double-bit errors as uncorrectable; with ecc false errors pass
// silently and are only tallied. Call before simulation starts; with
// both rates zero it is a no-op and the system stays on the fault-free
// fast path (zero-overhead contract).
func (s *System) EnableFaults(seed uint64, ber, dber float64, ecc bool) {
	if ber <= 0 && dber <= 0 {
		return
	}
	s.ber, s.dber, s.eccOn, s.faulted = ber, dber, ecc, true
	for i, m := range s.modules {
		m.faultStream = fault.NewStream(seed, fault.DomainDRAM, uint64(i))
	}
}

// FaultsEnabled reports whether DRAM bit-error injection is armed.
func (s *System) FaultsEnabled() bool { return s.faulted }

// ECCStats returns aggregate fault outcomes: SECDED-corrected
// single-bit errors, detected-uncorrectable double-bit errors, and
// silent errors (injection with ECC disabled). Like the other
// aggregates, safe only when shards are quiescent.
func (s *System) ECCStats() (corrected, uncorrectable, silent uint64) {
	for _, m := range s.modules {
		corrected += m.eccCorrected
		uncorrectable += m.eccUncorrect
		silent += m.silentFaults
	}
	return corrected, uncorrectable, silent
}

// Flush writes back all dirty lines, returning the number written back.
// Used between FFT passes when measuring pure per-pass DRAM traffic.
func (s *System) Flush() int {
	n := 0
	for _, m := range s.modules {
		for si := range m.sets {
			for li := range m.sets[si] {
				l := &m.sets[si][li]
				if l.valid && l.dirty {
					l.dirty = false
					n++
					m.writebacks++
					m.channel.Bytes += config.CacheLineBytes
				}
			}
		}
	}
	return n
}

// Invalidate drops all cached lines without writeback (test helper for
// constructing cold-cache scenarios).
func (s *System) Invalidate() {
	for _, m := range s.modules {
		for si := range m.sets {
			for li := range m.sets[si] {
				m.sets[si][li] = line{}
			}
		}
	}
}

// Aggregate statistics, summed over modules/channels on demand. Reading
// them concurrently with shard execution is a race; call only from
// single-threaded phases or at window barriers.

// Hits returns total cache-slice hits.
func (s *System) Hits() uint64 {
	var n uint64
	for _, m := range s.modules {
		n += m.hits
	}
	return n
}

// Misses returns total cache-slice misses.
func (s *System) Misses() uint64 {
	var n uint64
	for _, m := range s.modules {
		n += m.misses
	}
	return n
}

// Writebacks returns total dirty-line writebacks.
func (s *System) Writebacks() uint64 {
	var n uint64
	for _, m := range s.modules {
		n += m.writebacks
	}
	return n
}

// Prefetches returns total issued prefetch fills.
func (s *System) Prefetches() uint64 {
	var n uint64
	for _, m := range s.modules {
		n += m.prefetches
	}
	return n
}

// DRAMBytes returns total off-chip traffic in bytes.
func (s *System) DRAMBytes() uint64 {
	var n uint64
	for _, ch := range s.channels {
		n += ch.Bytes
	}
	return n
}

// QueueDelay returns total cycles requests spent waiting for module
// ports, a direct measure of the queuing the paper describes for
// concurrent same-module accesses.
func (s *System) QueueDelay() uint64 {
	var n uint64
	for _, m := range s.modules {
		n += m.queueDelay
	}
	return n
}

// ChannelBusy returns total busy slots summed over DRAM channels,
// usable with a run's cycle count to compute DRAM utilization.
func (s *System) ChannelBusy() uint64 {
	var b uint64
	for _, ch := range s.channels {
		b += ch.port.Busy
	}
	return b
}

// RowBufferStats returns aggregate DRAM row-buffer hits and misses.
func (s *System) RowBufferStats() (hits, misses uint64) {
	for _, ch := range s.channels {
		hits += ch.RowHits
		misses += ch.RowMisses
	}
	return hits, misses
}

// ModuleLoad returns per-module port busy counts, for checking that
// address hashing spreads traffic evenly.
func (s *System) ModuleLoad() []uint64 {
	out := make([]uint64, len(s.modules))
	for i, m := range s.modules {
		out[i] = m.port.Busy
	}
	return out
}
