// Package mem models the XMT shared-memory system: a global address
// space hashed across memory modules (MMs), each comprising an on-chip
// cache slice in front of a (possibly shared) DRAM channel, as described
// in §II-A of the paper. The model is timing-only: simulated data values
// live in the workload's own Go slices, while this package answers "when
// does this access complete and what did it cost".
//
// First-order effects modeled, matching the paper's analysis:
//   - each MM accepts one access per cycle, so concurrent accesses to the
//     same module (and in particular to the same location, e.g. a shared
//     twiddle table entry) are queued;
//   - cache misses fetch whole lines (CacheLineBytes), so strided access
//     (the FFT rotation phase) pays line-granularity overfetch;
//   - several MMs may share one DRAM controller (8/4/1 depending on the
//     configuration), bounding off-chip bandwidth;
//   - dirty evictions consume writeback bandwidth.
package mem

import (
	"fmt"

	"xmtfft/internal/config"
	"xmtfft/internal/sim"
)

// Timing constants (cycles). These are micro-architecture calibration
// parameters, not published figures; see DESIGN.md §5.
const (
	// CacheHitLatency is the cache-slice access latency on a hit.
	CacheHitLatency = 3
	// DRAMAccessLatency is the fixed DRAM access latency added to a miss
	// (~30 ns at 3.3 GHz).
	DRAMAccessLatency = 100
	// lineTransferCycles is the channel occupancy of one line transfer:
	// CacheLineBytes / DRAMBytesPerCycle.
	lineTransferCycles = config.CacheLineBytes / config.DRAMBytesPerCycle
	// RowBytes is the DRAM row-buffer (page) size per channel.
	RowBytes = 2048
	// RowActivateCycles is the extra latency of opening a new row. With
	// enough banks, activates overlap transfers, so the penalty is
	// latency-only (channel occupancy is unaffected) — consistent with
	// the sustained-bandwidth calibration of the analytic model.
	RowActivateCycles = 24
)

// HashAddress maps a byte address to a memory module index. The XMT
// design hashes the global address space across MMs at cache-line
// granularity; we use a Fibonacci (multiplicative) hash so that both
// unit-stride and large-power-of-two-stride streams spread evenly, which
// is the property the real hash is chosen for.
func HashAddress(addr uint64, modules int) int {
	line := addr / config.CacheLineBytes
	h := line * 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	return int(h >> 32 % uint64(modules))
}

// AccessResult reports the outcome of one timed memory access.
type AccessResult struct {
	Done   uint64 // cycle at which the value is available / committed
	Hit    bool   // whether the access hit in the module's cache slice
	Module int    // memory module that served it
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// channel is one DRAM channel: a bandwidth port plus an open-row
// register modeling the row buffer.
type channel struct {
	port    sim.Port
	openRow uint64
	hasRow  bool
	// RowHits and RowMisses count row-buffer outcomes.
	RowHits, RowMisses uint64
}

// transfer schedules one line transfer of the line containing addr,
// returning (grant cycle, extra latency from a row activate).
func (ch *channel) transfer(t uint64, addr uint64) (uint64, uint64) {
	g := ch.port.GrantN(t, lineTransferCycles)
	row := addr / RowBytes
	var extra uint64
	if ch.hasRow && ch.openRow == row {
		ch.RowHits++
	} else {
		ch.RowMisses++
		extra = RowActivateCycles
		ch.openRow = row
		ch.hasRow = true
	}
	return g, extra
}

// module is one memory module: a set-associative cache slice plus a port.
type module struct {
	port    sim.Port
	sets    [][]line
	setMask uint64
	channel *channel // shared DRAM channel
	useTick uint64
}

// System is the whole memory system for one machine configuration.
type System struct {
	cfg      config.Config
	modules  []*module
	channels []*channel

	// Prefetch enables a next-line prefetcher in each memory module
	// (§II-A lists prefetching among XMT's performance enhancements): a
	// demand miss also fetches the following line if absent, hiding the
	// DRAM latency of streaming access at the cost of overfetch on
	// irregular patterns. Off by default so traffic accounting matches
	// the analytic model; the prefetch ablation turns it on.
	Prefetch bool
	// Prefetches counts issued prefetch fills.
	Prefetches uint64

	// Statistics.
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	DRAMBytes  uint64
	// QueueDelay accumulates cycles requests spent waiting for module
	// ports, a direct measure of the queuing the paper describes for
	// concurrent same-module accesses.
	QueueDelay uint64
}

// NewSystem builds the memory system for cfg. The cache geometry is
// CacheBytesPerModule split into CacheLineBytes lines, 4-way associative.
func NewSystem(cfg config.Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := config.CacheBytesPerModule / config.CacheLineBytes
	const ways = 4
	sets := lines / ways
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: cache geometry gives %d sets; want a power of two", sets)
	}
	s := &System{cfg: cfg}
	s.channels = make([]*channel, cfg.DRAMChannels())
	for i := range s.channels {
		s.channels[i] = &channel{port: sim.Port{Width: 1}}
	}
	s.modules = make([]*module, cfg.MemModules)
	for i := range s.modules {
		m := &module{setMask: uint64(sets - 1), channel: s.channels[i/cfg.MMsPerDRAMCtrl]}
		m.sets = make([][]line, sets)
		backing := make([]line, sets*ways)
		for j := range m.sets {
			m.sets[j], backing = backing[:ways], backing[ways:]
		}
		s.modules[i] = m
	}
	return s, nil
}

// Config returns the configuration the system was built for.
func (s *System) Config() config.Config { return s.cfg }

// Access performs one word access to addr arriving at its memory module
// at cycle t (NoC traversal time is the caller's concern) and returns
// when it completes. Write accesses allocate on miss (fetch-on-write)
// and mark the line dirty.
func (s *System) Access(t uint64, addr uint64, write bool) AccessResult {
	mi := HashAddress(addr, len(s.modules))
	m := s.modules[mi]

	grant := m.port.Grant(t)
	s.QueueDelay += grant - t

	tag := addr / config.CacheLineBytes
	set := m.sets[tag&m.setMask]
	m.useTick++

	// Hit path.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = m.useTick
			if write {
				set[i].dirty = true
			}
			s.Hits++
			return AccessResult{Done: grant + CacheHitLatency, Hit: true, Module: mi}
		}
	}

	// Miss: choose LRU victim, write back if dirty, fetch the line.
	s.Misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	start := grant + CacheHitLatency // tag check before channel request
	if set[victim].valid && set[victim].dirty {
		// Writeback occupies the channel but the demand fetch need not
		// wait for its completion beyond channel serialization.
		victimAddr := set[victim].tag * config.CacheLineBytes
		m.channel.transfer(start, victimAddr)
		s.Writebacks++
		s.DRAMBytes += config.CacheLineBytes
	}
	fetch, activate := m.channel.transfer(start, addr)
	s.DRAMBytes += config.CacheLineBytes
	done := fetch + lineTransferCycles + DRAMAccessLatency + activate

	set[victim] = line{tag: tag, valid: true, dirty: write, used: m.useTick}

	if s.Prefetch {
		s.prefetchLine(start, addr+config.CacheLineBytes)
	}
	return AccessResult{Done: done, Hit: false, Module: mi}
}

// prefetchLine fills the line containing addr into its owning module if
// absent (address hashing scatters consecutive lines across modules, so
// the prefetch crosses to wherever the next line lives). The demand
// access does not wait for it; the fill consumes channel bandwidth and
// a cache way like any other fill.
func (s *System) prefetchLine(t uint64, addr uint64) {
	m := s.modules[HashAddress(addr, len(s.modules))]
	tag := addr / config.CacheLineBytes
	set := m.sets[tag&m.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return // already resident
		}
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		victimAddr := set[victim].tag * config.CacheLineBytes
		m.channel.transfer(t, victimAddr)
		s.Writebacks++
		s.DRAMBytes += config.CacheLineBytes
	}
	m.channel.transfer(t, addr)
	s.DRAMBytes += config.CacheLineBytes
	s.Prefetches++
	m.useTick++
	set[victim] = line{tag: tag, valid: true, used: m.useTick}
}

// Flush writes back all dirty lines, returning the number written back.
// Used between FFT passes when measuring pure per-pass DRAM traffic.
func (s *System) Flush() int {
	n := 0
	for _, m := range s.modules {
		for si := range m.sets {
			for li := range m.sets[si] {
				l := &m.sets[si][li]
				if l.valid && l.dirty {
					l.dirty = false
					n++
					s.Writebacks++
					s.DRAMBytes += config.CacheLineBytes
				}
			}
		}
	}
	return n
}

// Invalidate drops all cached lines without writeback (test helper for
// constructing cold-cache scenarios).
func (s *System) Invalidate() {
	for _, m := range s.modules {
		for si := range m.sets {
			for li := range m.sets[si] {
				m.sets[si][li] = line{}
			}
		}
	}
}

// ChannelBusy returns total busy slots summed over DRAM channels,
// usable with a run's cycle count to compute DRAM utilization.
func (s *System) ChannelBusy() uint64 {
	var b uint64
	for _, ch := range s.channels {
		b += ch.port.Busy
	}
	return b
}

// RowBufferStats returns aggregate DRAM row-buffer hits and misses.
func (s *System) RowBufferStats() (hits, misses uint64) {
	for _, ch := range s.channels {
		hits += ch.RowHits
		misses += ch.RowMisses
	}
	return hits, misses
}

// ModuleLoad returns per-module port busy counts, for checking that
// address hashing spreads traffic evenly.
func (s *System) ModuleLoad() []uint64 {
	out := make([]uint64, len(s.modules))
	for i, m := range s.modules {
		out[i] = m.port.Busy
	}
	return out
}
