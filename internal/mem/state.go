package mem

// Checkpoint state capture (internal/ckpt). The memory system's state is
// the cache-slice contents (tags and LRU bookkeeping — data values live
// host-side in this timing-directed model), the DRAM channels' port and
// row-buffer state, all statistics counters, and the per-module fault
// stream positions. Geometry (set count, associativity, channel wiring)
// is configuration, rebuilt by NewSystem on restore, not state.

import (
	"fmt"

	"xmtfft/internal/sim"
)

// LineState is one cache line's serializable state.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	Used  uint64
}

// ModuleState is one memory module's serializable state. Lines is
// flattened set-major (set 0's ways first).
type ModuleState struct {
	Port    sim.PortState
	Lines   []LineState
	UseTick uint64

	Hits       uint64
	Misses     uint64
	Writebacks uint64
	QueueDelay uint64
	Prefetches uint64

	FaultStream  uint64 // stream position; meaningful only when faulted
	ECCCorrected uint64
	ECCUncorrect uint64
	SilentFaults uint64
}

// ChannelState is one DRAM channel's serializable state.
type ChannelState struct {
	Port    sim.PortState
	OpenRow uint64
	HasRow  bool

	RowHits   uint64
	RowMisses uint64
	Bytes     uint64
}

// SystemState is the whole memory system's serializable state.
type SystemState struct {
	Prefetch bool
	Faulted  bool
	Modules  []ModuleState
	Channels []ChannelState
}

// CaptureState captures the system's state. Safe only when the machine
// is quiescent (no shard is touching modules), like the aggregate
// statistics methods.
func (s *System) CaptureState() SystemState {
	st := SystemState{
		Prefetch: s.Prefetch,
		Faulted:  s.faulted,
		Modules:  make([]ModuleState, len(s.modules)),
		Channels: make([]ChannelState, len(s.channels)),
	}
	for i, m := range s.modules {
		ms := ModuleState{
			Port:         m.port.State(),
			UseTick:      m.useTick,
			Hits:         m.hits,
			Misses:       m.misses,
			Writebacks:   m.writebacks,
			QueueDelay:   m.queueDelay,
			Prefetches:   m.prefetches,
			ECCCorrected: m.eccCorrected,
			ECCUncorrect: m.eccUncorrect,
			SilentFaults: m.silentFaults,
		}
		if m.faultStream != nil {
			ms.FaultStream = m.faultStream.State()
		}
		for _, set := range m.sets {
			for _, l := range set {
				ms.Lines = append(ms.Lines, LineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, Used: l.used})
			}
		}
		st.Modules[i] = ms
	}
	for i, ch := range s.channels {
		st.Channels[i] = ChannelState{
			Port:    ch.port.State(),
			OpenRow: ch.openRow,
			HasRow:  ch.hasRow,
			RowHits: ch.RowHits, RowMisses: ch.RowMisses, Bytes: ch.Bytes,
		}
	}
	return st
}

// RestoreState restores a captured state onto a system built from the
// same configuration. If the captured run had DRAM fault injection
// armed, the caller must have armed this system with the same plan
// first (EnableFaults owns the rate parameters; this method restores
// only the stream positions).
func (s *System) RestoreState(st SystemState) error {
	if len(st.Modules) != len(s.modules) {
		return fmt.Errorf("mem: restore with %d module states onto %d modules", len(st.Modules), len(s.modules))
	}
	if len(st.Channels) != len(s.channels) {
		return fmt.Errorf("mem: restore with %d channel states onto %d channels", len(st.Channels), len(s.channels))
	}
	if st.Faulted != s.faulted {
		return fmt.Errorf("mem: restore fault-injection mismatch (checkpoint faulted=%v, system faulted=%v); arm EnableFaults with the captured plan before restoring", st.Faulted, s.faulted)
	}
	for i, m := range s.modules {
		ms := &st.Modules[i]
		want := 0
		for _, set := range m.sets {
			want += len(set)
		}
		if len(ms.Lines) != want {
			return fmt.Errorf("mem: restore module %d with %d lines, geometry has %d", i, len(ms.Lines), want)
		}
	}
	for i, m := range s.modules {
		ms := &st.Modules[i]
		m.port.RestoreState(ms.Port)
		m.useTick = ms.UseTick
		m.hits, m.misses, m.writebacks = ms.Hits, ms.Misses, ms.Writebacks
		m.queueDelay, m.prefetches = ms.QueueDelay, ms.Prefetches
		m.eccCorrected, m.eccUncorrect, m.silentFaults = ms.ECCCorrected, ms.ECCUncorrect, ms.SilentFaults
		if m.faultStream != nil {
			m.faultStream.SetState(ms.FaultStream)
		}
		k := 0
		for si := range m.sets {
			for li := range m.sets[si] {
				l := ms.Lines[k]
				m.sets[si][li] = line{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, used: l.Used}
				k++
			}
		}
	}
	for i, ch := range s.channels {
		cs := &st.Channels[i]
		ch.port.RestoreState(cs.Port)
		ch.openRow, ch.hasRow = cs.OpenRow, cs.HasRow
		ch.RowHits, ch.RowMisses, ch.Bytes = cs.RowHits, cs.RowMisses, cs.Bytes
	}
	s.Prefetch = st.Prefetch
	return nil
}
