package mem

import (
	"testing"
	"testing/quick"

	"xmtfft/internal/config"
)

func smallCfg(t *testing.T) config.Config {
	t.Helper()
	c, err := config.FourK().Scaled(256) // 8 clusters, 8 MMs, 1 channel
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHashAddressRange(t *testing.T) {
	f := func(addr uint64, mods uint8) bool {
		m := int(mods%64) + 1
		h := HashAddress(addr, m)
		return h >= 0 && h < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestHashAddressLineGranularity(t *testing.T) {
	// All words in one cache line must map to the same module.
	base := uint64(0x12340)
	want := HashAddress(base-base%config.CacheLineBytes, 16)
	for off := uint64(0); off < config.CacheLineBytes; off += 4 {
		if got := HashAddress(base-base%config.CacheLineBytes+off, 16); got != want {
			t.Fatalf("offset %d maps to module %d, want %d", off, got, want)
		}
	}
}

func TestHashSpreadsUnitStride(t *testing.T) {
	const mods = 16
	counts := make([]int, mods)
	for addr := uint64(0); addr < 1<<16; addr += config.CacheLineBytes {
		counts[HashAddress(addr, mods)]++
	}
	total := 1 << 16 / config.CacheLineBytes
	for i, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.02 || frac > 0.15 { // ideal 1/16 = 0.0625
			t.Errorf("module %d got fraction %.3f of unit-stride lines", i, frac)
		}
	}
}

func TestHashSpreadsPowerOfTwoStride(t *testing.T) {
	// Large power-of-two strides (FFT rotation writes) must not all land
	// on one module -- the reason XMT hashes addresses.
	const mods = 16
	counts := make([]int, mods)
	const stride = 1 << 14
	for i := uint64(0); i < 1024; i++ {
		counts[HashAddress(i*stride, mods)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max > 300 { // ideal 64; fail only on gross imbalance
		t.Errorf("stride-%d accesses concentrate on one module: max %d of 1024", stride, max)
	}
}

func TestAccessHitMiss(t *testing.T) {
	s, err := NewSystem(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	r1 := s.Access(0, 0x1000, false)
	if r1.Hit {
		t.Fatal("cold access hit")
	}
	if r1.Done < DRAMAccessLatency {
		t.Fatalf("miss completed at %d, faster than DRAM latency", r1.Done)
	}
	r2 := s.Access(r1.Done, 0x1004, false) // same line
	if !r2.Hit {
		t.Fatal("same-line access missed")
	}
	if got := r2.Done - r1.Done; got != CacheHitLatency {
		t.Fatalf("hit latency = %d, want %d", got, CacheHitLatency)
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", s.Hits(), s.Misses())
	}
}

func TestSameModuleQueueing(t *testing.T) {
	s, err := NewSystem(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Warm one line, then hammer it concurrently: completions serialize
	// one per cycle through the module port (the twiddle-table bottleneck
	// from §IV-A).
	warm := s.Access(0, 0x2000, false)
	t0 := warm.Done
	var last uint64
	for i := 0; i < 8; i++ {
		r := s.Access(t0, 0x2000, false)
		if !r.Hit {
			t.Fatalf("access %d missed", i)
		}
		if r.Done <= last {
			t.Fatalf("access %d completed at %d, not after previous %d", i, r.Done, last)
		}
		last = r.Done
	}
	if got := last - t0; got < 7+CacheHitLatency {
		t.Fatalf("8 queued accesses finished in %d cycles; want serialization", got)
	}
	if s.QueueDelay() == 0 {
		t.Fatal("queue delay not recorded")
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	s, err := NewSystem(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Access(0, 0x3000, true)
	if r.Hit {
		t.Fatal("cold write hit")
	}
	base := s.DRAMBytes()
	if base != config.CacheLineBytes {
		t.Fatalf("write-allocate fetched %d bytes, want one line", base)
	}
	n := s.Flush()
	if n != 1 {
		t.Fatalf("flush wrote back %d lines, want 1", n)
	}
	if s.DRAMBytes() != base+config.CacheLineBytes {
		t.Fatalf("flush DRAM bytes = %d, want %d", s.DRAMBytes(), base+config.CacheLineBytes)
	}
	if s.Flush() != 0 {
		t.Fatal("second flush found dirty lines")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	s, err := NewSystem(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// Fill one set's 4 ways with dirty lines, then force an eviction by a
	// 5th distinct tag mapping to the same set. With 256 sets, addresses
	// that differ by setCount*lineBytes in the tag-index bits collide.
	const sets = config.CacheBytesPerModule / config.CacheLineBytes / 4
	var target uint64
	mod := HashAddress(0, s.cfg.MemModules)
	// Find 5 addresses in the same module and same set.
	var sameSet []uint64
	for a := uint64(0); len(sameSet) < 5; a += sets * config.CacheLineBytes {
		if HashAddress(a, s.cfg.MemModules) == mod {
			sameSet = append(sameSet, a)
		}
	}
	_ = target
	t64 := uint64(0)
	for _, a := range sameSet {
		r := s.Access(t64, a, true)
		t64 = r.Done
	}
	if s.Writebacks() == 0 {
		t.Fatal("filling 5 dirty lines into a 4-way set produced no writeback")
	}
}

func TestStreamingVsStridedTraffic(t *testing.T) {
	cfg := smallCfg(t)
	words := 4096

	// Streaming: consecutive words; one miss per 8 words (32 B line).
	stream, _ := NewSystem(cfg)
	t64 := uint64(0)
	for i := 0; i < words; i++ {
		r := stream.Access(t64, uint64(i*4), false)
		t64 = r.Done
	}
	// Strided: one word per line; every access misses.
	strided, _ := NewSystem(cfg)
	t64 = 0
	for i := 0; i < words; i++ {
		r := strided.Access(t64, uint64(i*config.CacheLineBytes*7), false)
		t64 = r.Done
	}
	if strided.DRAMBytes() < 6*stream.DRAMBytes() {
		t.Errorf("strided traffic %d not >> streaming traffic %d", strided.DRAMBytes(), stream.DRAMBytes())
	}
}

func TestChannelSharingSlowsMisses(t *testing.T) {
	// Same module count, fewer channels => streaming misses take longer.
	base := config.FourK()
	shared, err := base.Scaled(512) // 16 MMs, MMsPerDRAMCtrl=8 -> 2 channels
	if err != nil {
		t.Fatal(err)
	}
	private := shared
	private.MMsPerDRAMCtrl = 1 // 16 channels
	run := func(c config.Config) uint64 {
		s, err := NewSystem(c)
		if err != nil {
			t.Fatal(err)
		}
		var done uint64
		// Issue many independent misses at cycle 0 across all modules.
		for i := 0; i < 2048; i++ {
			r := s.Access(0, uint64(i*config.CacheLineBytes), false)
			if r.Done > done {
				done = r.Done
			}
		}
		return done
	}
	tShared, tPrivate := run(shared), run(private)
	if tPrivate*2 > tShared {
		t.Errorf("private channels (%d cycles) not much faster than shared (%d cycles)", tPrivate, tShared)
	}
}

func TestInvalidate(t *testing.T) {
	s, _ := NewSystem(smallCfg(t))
	s.Access(0, 0x100, true)
	s.Invalidate()
	if s.Flush() != 0 {
		t.Fatal("invalidate left dirty lines")
	}
	r := s.Access(0, 0x100, false)
	if r.Hit {
		t.Fatal("access after invalidate hit")
	}
}

func TestModuleLoadBalance(t *testing.T) {
	s, _ := NewSystem(smallCfg(t))
	for i := 0; i < 1<<14; i++ {
		s.Access(0, uint64(i*4), false)
	}
	loads := s.ModuleLoad()
	var min, max uint64 = ^uint64(0), 0
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == 0 || max > min*4 {
		t.Errorf("module load imbalance: min=%d max=%d", min, max)
	}
}

func TestNewSystemRejectsInvalid(t *testing.T) {
	c := config.FourK()
	c.TCUs = 99
	if _, err := NewSystem(c); err == nil {
		t.Fatal("NewSystem accepted invalid config")
	}
}

func TestRowBufferStats(t *testing.T) {
	s, err := NewSystem(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// First miss opens a row; a second miss in the same row (different
	// line, same module/channel/2KB page) hits the row buffer.
	r1 := s.Access(0, 0, false)
	if r1.Hit {
		t.Fatal("cold access hit cache")
	}
	hits, misses := s.RowBufferStats()
	if misses != 1 || hits != 0 {
		t.Fatalf("after first miss: hits=%d misses=%d", hits, misses)
	}
	// Find another address in the same DRAM row going through any
	// channel; with one channel (smallCfg) every line shares it, so any
	// line inside [0, RowBytes) keeps the row open.
	r2 := s.Access(r1.Done, config.CacheLineBytes, false)
	if r2.Hit {
		t.Fatal("distinct line hit cache")
	}
	hits, _ = s.RowBufferStats()
	if hits != 1 {
		t.Fatalf("same-row miss did not hit row buffer: hits=%d", hits)
	}
	// A far address (different 2KB row) misses the row buffer and pays
	// the activate latency.
	r3 := s.Access(r2.Done, 1<<20, false)
	_, misses = s.RowBufferStats()
	if misses < 2 {
		t.Fatalf("far access did not miss row buffer: misses=%d", misses)
	}
	if r3.Done-r2.Done < DRAMAccessLatency+RowActivateCycles {
		t.Fatalf("row-miss latency too small: %d", r3.Done-r2.Done)
	}
}

func TestRowMissAddsLatencyOnly(t *testing.T) {
	// Row activates must not consume channel bandwidth slots.
	s, _ := NewSystem(smallCfg(t))
	before := s.ChannelBusy()
	s.Access(0, 0, false)
	if got := s.ChannelBusy() - before; got != config.CacheLineBytes/config.DRAMBytesPerCycle {
		t.Fatalf("one line transfer consumed %d slots, want %d", got, config.CacheLineBytes/config.DRAMBytesPerCycle)
	}
}

func TestPrefetcherHelpsStreaming(t *testing.T) {
	cfg := smallCfg(t)
	run := func(prefetch bool) (uint64, uint64) {
		s, _ := NewSystem(cfg)
		s.Prefetch = prefetch
		var done, misses uint64
		t64 := uint64(0)
		for i := 0; i < 4096; i++ {
			r := s.Access(t64, uint64(i*4), false)
			t64 = r.Done
			done = r.Done
		}
		misses = s.Misses()
		return done, misses
	}
	tOff, missOff := run(false)
	tOn, missOn := run(true)
	if missOn >= missOff {
		t.Errorf("prefetch did not reduce misses: %d vs %d", missOn, missOff)
	}
	if tOn >= tOff {
		t.Errorf("prefetch did not speed streaming: %d vs %d cycles", tOn, tOff)
	}
}

func TestPrefetcherCountsAndOverfetch(t *testing.T) {
	s, _ := NewSystem(smallCfg(t))
	s.Prefetch = true
	// Random far-apart lines: prefetches are pure overfetch.
	t64 := uint64(0)
	for i := 0; i < 64; i++ {
		r := s.Access(t64, uint64(i)*131072+7, false)
		t64 = r.Done
	}
	if s.Prefetches() == 0 {
		t.Fatal("no prefetches recorded")
	}
	// Traffic exceeds pure demand (64 lines).
	if s.DRAMBytes() <= 64*config.CacheLineBytes {
		t.Errorf("no overfetch traffic: %d bytes", s.DRAMBytes())
	}
}

// Property (testing/quick): every access completes no earlier than its
// arrival plus the hit latency, and an immediate re-access of the same
// line after completion is a cache hit.
func TestAccessInvariantsProperty(t *testing.T) {
	cfg := smallCfg(t)
	f := func(addrs []uint32, writes []bool) bool {
		s, err := NewSystem(cfg)
		if err != nil {
			return false
		}
		now := uint64(0)
		for i, a := range addrs {
			addr := uint64(a) % (1 << 22)
			w := i < len(writes) && writes[i]
			r := s.Access(now, addr, w)
			if r.Done < now+CacheHitLatency {
				return false
			}
			r2 := s.Access(r.Done, addr, false)
			if !r2.Hit {
				return false
			}
			now = r2.Done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
