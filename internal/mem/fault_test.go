package mem

import (
	"testing"

	"xmtfft/internal/config"
)

func newFaultSystem(t *testing.T) *System {
	t.Helper()
	cfg, err := config.FourK().Scaled(512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drive issues a deterministic miss-heavy access pattern and returns
// total completion latency plus the last result.
func drive(s *System, n int) (sum uint64, last AccessResult) {
	for i := 0; i < n; i++ {
		addr := uint64(i) * config.CacheLineBytes * 7
		last = s.Access(uint64(i)*4, addr, i%3 == 0)
		sum += last.Done
	}
	return sum, last
}

func TestEnableFaultsZeroRatesIsNoOp(t *testing.T) {
	a, b := newFaultSystem(t), newFaultSystem(t)
	b.EnableFaults(1, 0, 0, true)
	if b.FaultsEnabled() {
		t.Fatal("zero rates must not arm fault injection")
	}
	sa, _ := drive(a, 2000)
	sb, _ := drive(b, 2000)
	if sa != sb {
		t.Fatalf("zero-rate EnableFaults changed timing: %d vs %d", sa, sb)
	}
	if c, u, sl := b.ECCStats(); c+u+sl != 0 {
		t.Fatalf("fault counters nonzero: %d/%d/%d", c, u, sl)
	}
}

func TestECCCorrectionAddsLatency(t *testing.T) {
	clean, ecc := newFaultSystem(t), newFaultSystem(t)
	ecc.EnableFaults(7, 0.5, 0, true)
	sClean, _ := drive(clean, 2000)
	sECC, _ := drive(ecc, 2000)
	corrected, uncorrectable, silent := ecc.ECCStats()
	if corrected == 0 {
		t.Fatal("ber=0.5 over 2000 accesses produced no corrections")
	}
	if uncorrectable != 0 || silent != 0 {
		t.Fatalf("unexpected uncorrectable=%d silent=%d", uncorrectable, silent)
	}
	if want := sClean + corrected*ECCCorrectCycles; sECC != want {
		t.Fatalf("total latency %d, want clean %d + %d corrections * %d = %d",
			sECC, sClean, corrected, ECCCorrectCycles, want)
	}
}

func TestDoubleBitErrorsDetectedNotCorrected(t *testing.T) {
	s := newFaultSystem(t)
	s.EnableFaults(3, 0, 0.3, true)
	sawUncorrectable := false
	for i := 0; i < 2000; i++ {
		addr := uint64(i) * config.CacheLineBytes * 5
		res := s.Access(uint64(i)*4, addr, false)
		if res.Fault == FaultECCUncorrectable {
			sawUncorrectable = true
		}
		if res.Fault == FaultECCCorrected {
			t.Fatal("double-bit error reported as corrected")
		}
	}
	if !sawUncorrectable {
		t.Fatal("dber=0.3 produced no uncorrectable results")
	}
	_, u, _ := s.ECCStats()
	if u == 0 {
		t.Fatal("uncorrectable counter stayed zero")
	}
}

func TestNoECCFaultsAreSilentAndFree(t *testing.T) {
	clean, bare := newFaultSystem(t), newFaultSystem(t)
	bare.EnableFaults(7, 0.5, 0.01, false)
	sClean, _ := drive(clean, 2000)
	sBare, lastBare := drive(bare, 2000)
	if sBare != sClean {
		t.Fatalf("ECC-off faults changed timing: %d vs %d", sBare, sClean)
	}
	c, u, silent := bare.ECCStats()
	if c != 0 || u != 0 {
		t.Fatalf("ECC-off run recorded ECC outcomes: corrected=%d uncorrectable=%d", c, u)
	}
	if silent == 0 {
		t.Fatal("ECC-off faults not tallied as silent")
	}
	_ = lastBare
}

func TestFaultSequenceIndependentOfECCSetting(t *testing.T) {
	// Same seed, same access pattern: the set of faulted fetches must be
	// identical whether ECC is on or off (one draw per fetch either way).
	on, off := newFaultSystem(t), newFaultSystem(t)
	on.EnableFaults(11, 0.2, 0.05, true)
	off.EnableFaults(11, 0.2, 0.05, false)
	drive(on, 3000)
	drive(off, 3000)
	c, u, _ := on.ECCStats()
	_, _, silent := off.ECCStats()
	if c+u != silent {
		t.Fatalf("fault totals differ across protection settings: ecc-on %d+%d, ecc-off %d",
			c, u, silent)
	}
}

func TestFaultsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) [3]uint64 {
		s := newFaultSystem(t)
		s.EnableFaults(seed, 0.1, 0.02, true)
		drive(s, 3000)
		c, u, sl := s.ECCStats()
		return [3]uint64{c, u, sl}
	}
	if a, b := run(5), run(5); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a, b := run(5), run(6); a == b {
		t.Fatalf("different seeds coincided exactly: %v", a)
	}
}

func TestHitsNeverFault(t *testing.T) {
	s := newFaultSystem(t)
	s.EnableFaults(9, 1, 0, true) // every fetch errors
	addr := uint64(4096)
	first := s.Access(0, addr, false)
	if first.Hit || first.Fault != FaultECCCorrected {
		t.Fatalf("first access: hit=%v fault=%v, want miss+corrected", first.Hit, first.Fault)
	}
	again := s.Access(first.Done, addr, false)
	if !again.Hit {
		t.Fatal("second access should hit")
	}
	if again.Fault != FaultNone {
		t.Fatalf("cache hit reported fault %v; errors occur on line fetches only", again.Fault)
	}
}
