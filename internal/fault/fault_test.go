package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(42, DomainNoC, 7)
	b := NewStream(42, DomainNoC, 7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestStreamsDecorrelated(t *testing.T) {
	// Neighbouring keys must diverge immediately on every axis.
	base := NewStream(1, DomainDRAM, 0)
	for _, other := range []*Stream{
		NewStream(2, DomainDRAM, 0),
		NewStream(1, DomainNoC, 0),
		NewStream(1, DomainDRAM, 1),
	} {
		same := 0
		b := *base // copy so each comparison starts fresh
		for i := 0; i < 64; i++ {
			if b.Uint64() == other.Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Fatalf("streams with neighbouring keys collided %d/64 draws", same)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(9, DomainNoC, 0)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestHitRateApproximates(t *testing.T) {
	s := NewStream(3, DomainDRAM, 5)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Hit(0.1) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.09 || got > 0.11 {
		t.Fatalf("Hit(0.1) frequency %g, want ~0.1", got)
	}
}

func TestHitAlwaysConsumesDraw(t *testing.T) {
	// Hit must advance the stream identically regardless of p, so runs
	// with different protection settings see identical fault sequences.
	a := NewStream(5, DomainNoC, 0)
	b := NewStream(5, DomainNoC, 0)
	a.Hit(0)
	b.Hit(1)
	if av, bv := a.Uint64(), b.Uint64(); av != bv {
		t.Fatalf("Hit consumed different draw counts: next %d vs %d", av, bv)
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{}).Active() {
		t.Fatal("zero plan must be inactive")
	}
	for _, p := range []Plan{
		{NoCDrop: 0.1},
		{NoCCorrupt: 0.1},
		{NoCDropNth: []uint64{3}},
		{DRAMBitErr: 1e-4},
		{DRAMDoubleBitErr: 1e-6},
		{KillClusters: []int{0}},
	} {
		if !p.Active() {
			t.Fatalf("plan %+v should be active", p)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := Plan{NoCDrop: 0.5, NoCCorrupt: 0.25, DRAMBitErr: 0.001, KillClusters: []int{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	for _, p := range []Plan{
		{NoCDrop: -0.1},
		{NoCDrop: 1.5},
		{NoCCorrupt: 2},
		{DRAMBitErr: -1},
		{DRAMDoubleBitErr: 1.01},
		{NoCDrop: 0.7, NoCCorrupt: 0.7},
		{DRAMBitErr: 0.6, DRAMDoubleBitErr: 0.6},
		{KillClusters: []int{-1}},
	} {
		if err := p.Validate(); err == nil {
			t.Fatalf("invalid plan %+v accepted", p)
		}
	}
}

func TestPickClusters(t *testing.T) {
	got := PickClusters(11, 4, 16)
	if len(got) != 4 {
		t.Fatalf("want 4 picks, got %v", got)
	}
	seen := map[int]bool{}
	for i, c := range got {
		if c < 0 || c >= 16 {
			t.Fatalf("pick %d out of range: %v", c, got)
		}
		if seen[c] {
			t.Fatalf("duplicate pick %d: %v", c, got)
		}
		seen[c] = true
		if i > 0 && got[i-1] > c {
			t.Fatalf("picks not sorted: %v", got)
		}
	}
	if again := PickClusters(11, 4, 16); !reflect.DeepEqual(got, again) {
		t.Fatalf("PickClusters not deterministic: %v vs %v", got, again)
	}
	if other := PickClusters(12, 4, 16); reflect.DeepEqual(got, other) {
		t.Fatalf("different seeds gave identical picks %v", got)
	}
	if all := PickClusters(1, 99, 8); len(all) != 8 {
		t.Fatalf("over-asking should clamp to total: %v", all)
	}
	if none := PickClusters(1, 0, 8); none != nil {
		t.Fatalf("k=0 should pick nothing: %v", none)
	}
}
