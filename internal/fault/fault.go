// Package fault is the deterministic fault-injection engine of the
// simulator's robustness subsystem. It provides seed-driven random
// streams (one independent splitmix64 stream per fault domain and site,
// so shards can draw concurrently without sharing state) and the Plan
// describing which faults to inject: rates (per-packet NoC drop or
// corruption probability, per-line-fetch DRAM bit-error rates) and
// explicit schedules (drop the Nth packet, kill a listed cluster).
//
// Determinism contract: a Plan plus a seed fully determines every fault
// a run experiences. Streams are keyed by (seed, domain, site) so the
// draw sequence of one site never depends on activity at another —
// DRAM module 7's errors are the same whether module 3 was busy or
// idle, and the same for every -sim-workers count, because each stream
// is only ever advanced from one deterministically-ordered call site
// (the NoC stream from the coordinator / serial event loop, each DRAM
// stream from its owning shard). The resilience mechanisms that absorb
// these faults live with the hardware they protect: the retransmit
// protocol in internal/noc, the SECDED ECC model in internal/mem, the
// spawn-boundary cluster failover in internal/xmt, and the livelock
// watchdog in internal/sim.
package fault

import (
	"fmt"
	"sort"
)

// Domain identifies an independent fault-injection stream family.
type Domain uint8

const (
	// DomainNoC draws per-packet drop/corruption outcomes.
	DomainNoC Domain = iota
	// DomainDRAM draws per-line-fetch bit-error outcomes (site = memory
	// module index, so module streams are independent and shard-safe).
	DomainDRAM
	// DomainCompute draws cluster fail-stop choices.
	DomainCompute
)

// Stream is a deterministic splitmix64 pseudo-random stream. The zero
// value is usable but every stream should come from NewStream so that
// distinct (seed, domain, site) triples yield decorrelated sequences.
// A Stream is not safe for concurrent use; give each concurrent site
// its own.
type Stream struct {
	state uint64
}

// NewStream returns the stream keyed by (seed, domain, site).
func NewStream(seed uint64, d Domain, site uint64) *Stream {
	s := &Stream{state: seed ^ 0x6A09E667F3BCC909}
	// Absorb the domain and site through full mixing rounds so that
	// related keys (seed, seed+1; site, site+1) diverge immediately.
	s.state = s.Uint64() ^ (uint64(d)+1)*0x9E3779B97F4A7C15
	s.state = s.Uint64() ^ (site+1)*0xC2B2AE3D27D4EB4F
	return s
}

// Uint64 returns the next value of the stream (splitmix64).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns the next value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// State returns the stream's position, for checkpointing. A stream
// restored with SetState produces exactly the sequence the captured
// stream would have — the property that makes mid-run checkpoints of
// fault-injected simulations bit-identical to uninterrupted runs.
func (s *Stream) State() uint64 { return s.state }

// SetState restores a position captured by State.
func (s *Stream) SetState(v uint64) { s.state = v }

// Hit draws one Bernoulli outcome with probability p. It always
// consumes exactly one value from the stream (even for p <= 0 or
// p >= 1), so alternative protection settings see identical fault
// sequences for the same seed.
func (s *Stream) Hit(p float64) bool {
	v := s.Float64()
	return v < p
}

// Plan describes the faults one run injects. The zero value injects
// nothing (Active reports false) and enabling it on a machine is a
// no-op, preserving the zero-overhead contract.
type Plan struct {
	// Seed keys every fault stream of the run.
	Seed uint64

	// NoCDrop is the per-packet probability that a request packet is
	// lost in the interconnect (recovered by timeout + retransmit).
	NoCDrop float64
	// NoCCorrupt is the per-packet probability that a request packet
	// arrives corrupted; the receiver's checksum rejects it and the
	// sender retransmits, so the cost is the same as a drop but the
	// event is accounted separately.
	NoCCorrupt float64
	// NoCDropNth lists explicit packet-attempt sequence numbers
	// (1-based, in network send order) to drop, independent of the
	// rates — the "(cycle, site) list" form of a schedule, expressed in
	// the one coordinate that is deterministic across engines.
	NoCDropNth []uint64

	// DRAMBitErr is the per-line-fetch probability of a single-bit
	// error (correctable under SECDED ECC, at a cycle penalty).
	DRAMBitErr float64
	// DRAMDoubleBitErr is the per-line-fetch probability of a
	// double-bit error (detectable but uncorrectable under SECDED).
	DRAMDoubleBitErr float64
	// NoECC disables the SECDED model: bit errors then pass silently
	// into the machine and are only tallied, modeling an unprotected
	// memory system. Default false = ECC protection on.
	NoECC bool

	// KillClusters lists cluster indices that fail-stop before the next
	// parallel section; the machine degrades gracefully by remapping
	// virtual threads onto the surviving clusters.
	KillClusters []int
}

// NoCActive reports whether any NoC fault is configured.
func (p Plan) NoCActive() bool {
	return p.NoCDrop > 0 || p.NoCCorrupt > 0 || len(p.NoCDropNth) > 0
}

// DRAMActive reports whether any DRAM fault is configured.
func (p Plan) DRAMActive() bool {
	return p.DRAMBitErr > 0 || p.DRAMDoubleBitErr > 0
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.NoCActive() || p.DRAMActive() || len(p.KillClusters) > 0
}

// Validate checks the plan's parameters for internal consistency.
func (p Plan) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("fault: %s rate %g outside [0, 1]", name, v)
		}
		return nil
	}
	if err := check("noc drop", p.NoCDrop); err != nil {
		return err
	}
	if err := check("noc corrupt", p.NoCCorrupt); err != nil {
		return err
	}
	if err := check("dram bit-error", p.DRAMBitErr); err != nil {
		return err
	}
	if err := check("dram double-bit-error", p.DRAMDoubleBitErr); err != nil {
		return err
	}
	if p.NoCDrop+p.NoCCorrupt > 1 {
		return fmt.Errorf("fault: noc drop+corrupt rates sum to %g > 1", p.NoCDrop+p.NoCCorrupt)
	}
	if p.DRAMBitErr+p.DRAMDoubleBitErr > 1 {
		return fmt.Errorf("fault: dram error rates sum to %g > 1", p.DRAMBitErr+p.DRAMDoubleBitErr)
	}
	for _, c := range p.KillClusters {
		if c < 0 {
			return fmt.Errorf("fault: negative cluster index %d in kill list", c)
		}
	}
	return nil
}

// PickClusters deterministically chooses k distinct cluster indices out
// of total to fail-stop, keyed by the seed (partial Fisher–Yates on the
// DomainCompute stream). The result is sorted ascending. k is clamped
// to total.
func PickClusters(seed uint64, k, total int) []int {
	if k <= 0 || total <= 0 {
		return nil
	}
	if k > total {
		k = total
	}
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	s := NewStream(seed, DomainCompute, 0)
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		j := i + int(s.Uint64()%uint64(total-i))
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, idx[i])
	}
	sort.Ints(out)
	return out
}
