package viz

import (
	"fmt"
	"io"
	"strings"

	"xmtfft/internal/trace"
)

// UtilizationSVG renders epoch utilization samples as heat strips — one
// row per resource (FPU, LSU, DRAM, cache hit rate, outstanding
// threads), one cell per epoch, intensity proportional to the sampled
// value. It is the time-resolved companion to TimelineSVG: the timeline
// says where the cycles went, the heat strip says which resource was
// saturated while they did.
func UtilizationSVG(w io.Writer, label string, epoch uint64, samples []trace.Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("viz: no utilization samples")
	}

	// Downsample to at most maxCols columns by averaging, so long runs
	// stay legible (and the file small).
	const maxCols = 256
	cols := len(samples)
	group := 1
	for cols > maxCols {
		group *= 2
		cols = (len(samples) + group - 1) / group
	}

	maxOut := 1
	for _, s := range samples {
		if s.Outstanding > maxOut {
			maxOut = s.Outstanding
		}
	}
	rows := []struct {
		name string
		val  func(s trace.Sample) float64
	}{
		{"fpu", func(s trace.Sample) float64 { return s.FPU }},
		{"lsu", func(s trace.Sample) float64 { return s.LSU }},
		{"dram", func(s trace.Sample) float64 { return s.DRAM }},
		{"cache hit", func(s trace.Sample) float64 { return s.HitRate }},
		{"threads", func(s trace.Sample) float64 { return float64(s.Outstanding) / float64(maxOut) }},
	}

	const width, rowH, gap, mL, mT, mR = 820, 24, 4, 90, 46, 60
	height := mT + len(rows)*(rowH+gap) + 40
	usable := float64(width - mL - mR)
	cw := usable / float64(cols)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="10" y="24" font-family="sans-serif" font-size="15">%s — utilization, %d-cycle epochs</text>`+"\n",
		esc(label), epoch)

	for ri, row := range rows {
		y := mT + ri*(rowH+gap)
		var mean float64
		for _, s := range samples {
			mean += row.val(s)
		}
		mean /= float64(len(samples))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			mL-6, y+rowH/2+4, esc(row.name))
		for c := 0; c < cols; c++ {
			lo, hi := c*group, (c+1)*group
			if hi > len(samples) {
				hi = len(samples)
			}
			var v float64
			for _, s := range samples[lo:hi] {
				v += row.val(s)
			}
			v /= float64(hi - lo)
			fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"/>`+"\n",
				float64(mL)+float64(c)*cw, y, cw+0.05, rowH, heat(v))
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%.0f%%</text>`+"\n",
			width-mR+6, y+rowH/2+4, mean*100)
	}

	// Cycle axis: first and last sampled epoch.
	axisY := mT + len(rows)*(rowH+gap) + 16
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">cycle %d</text>`+"\n",
		mL, axisY, samples[0].Cycle)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="end">cycle %d</text>`+"\n",
		width-mR, axisY, samples[len(samples)-1].Cycle)
	fmt.Fprintln(&b, "</svg>")
	_, err := io.WriteString(w, b.String())
	return err
}

// heat maps a 0..1 value onto a white-to-dark-red ramp.
func heat(v float64) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	lerp := func(a, b int) int { return a + int(v*float64(b-a)) }
	return fmt.Sprintf("#%02x%02x%02x", lerp(255, 165), lerp(255, 15), lerp(255, 21))
}
