package viz

import (
	"fmt"
	"io"

	"xmtfft/internal/model"
)

// Fig3SVG renders the paper's Fig. 3 as SVG: one roofline per
// configuration (solid up to the ridge, flat beyond) and the three
// empirical markers (rotation, overall, non-rotation) per machine.
func Fig3SVG(w io.Writer) error {
	projs, err := model.TableIV()
	if err != nil {
		return err
	}
	p := Plot{
		Title:  "Roofline model of each XMT configuration (512^3 3D FFT)",
		XLabel: "computational intensity (FLOPs/byte)",
		YLabel: "GFLOPS (actual-FLOP convention)",
		W:      860, H: 560,
		XMin: 0.05, XMax: 16,
	}
	for _, pr := range projs {
		roof := model.RooflineOf(pr.Cfg)
		// Roofline polyline across the x range.
		xs := []float64{0.05, roof.Ridge, 16}
		ys := []float64{roof.Bound(0.05), roof.Bound(roof.Ridge), roof.Bound(16)}
		p.Add(Series{Name: pr.Cfg.Name + " roof", X: xs, Y: ys})
		// Markers share the roof's color (assigned just above).
		color := p.Series[len(p.Series)-1].Color
		p.Add(Series{
			Name:    pr.Cfg.Name + " phases",
			X:       []float64{pr.Rotation.Intensity, pr.Overall.Intensity, pr.Stream.Intensity},
			Y:       []float64{pr.Rotation.ActualGFLOPS, pr.Overall.ActualGFLOPS, pr.Stream.ActualGFLOPS},
			Color:   color,
			Markers: true,
			Dashed:  true,
		})
	}
	return p.Render(w)
}

// ScalingSVG renders the strong-scaling study (speedup vs TCUs).
func ScalingSVG(w io.Writer) error {
	pts, err := model.StrongScaling(model.PaperN)
	if err != nil {
		return err
	}
	var xs, ys, ideal []float64
	base := float64(pts[0].Cfg.TCUs)
	for _, pt := range pts {
		xs = append(xs, float64(pt.Cfg.TCUs))
		ys = append(ys, pt.Speedup)
		ideal = append(ideal, float64(pt.Cfg.TCUs)/base)
	}
	p := Plot{
		Title:  fmt.Sprintf("Strong scaling, %d^3 FFT", model.PaperN),
		XLabel: "TCUs",
		YLabel: "speedup over 4k",
		W:      640, H: 480,
	}
	p.Add(Series{Name: "ideal (per TCU)", X: xs, Y: ideal, Dashed: true, Color: "#999999"})
	p.Add(Series{Name: "modeled", X: xs, Y: ys, Markers: true})
	return p.Render(w)
}

// WeakScalingSVG renders the weak-scaling study (efficiency vs TCUs).
func WeakScalingSVG(w io.Writer) error {
	pts, err := model.WeakScaling(256)
	if err != nil {
		return err
	}
	var xs, eff, ideal []float64
	for _, pt := range pts {
		xs = append(xs, float64(pt.Cfg.TCUs))
		eff = append(eff, pt.Efficiency)
		ideal = append(ideal, 1)
	}
	p := Plot{
		Title:  "Weak scaling (work grows with TCUs; base 256^3 on 4k)",
		XLabel: "TCUs",
		YLabel: "efficiency (base time / time)",
		W:      640, H: 480,
		YMin: 0.25, YMax: 4,
	}
	p.Add(Series{Name: "perfect", X: xs, Y: ideal, Dashed: true, Color: "#999999"})
	p.Add(Series{Name: "modeled", X: xs, Y: eff, Markers: true})
	return p.Render(w)
}
