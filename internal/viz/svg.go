// Package viz renders the paper's figure as an actual image: a
// dependency-free SVG writer plus a log-log plot component sized for
// Fig. 3 (rooflines with per-phase markers) and the scaling studies.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one plotted line or marker set.
type Series struct {
	Name    string
	X, Y    []float64
	Color   string
	Markers bool // draw point markers
	Dashed  bool
}

// Plot is a log-log chart.
type Plot struct {
	Title          string
	XLabel, YLabel string
	W, H           int
	Series         []Series
	XMin, XMax     float64 // 0 = auto
	YMin, YMax     float64
}

// defaultPalette cycles through visually distinct colors.
var defaultPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

// Add appends a series, assigning a palette color if unset.
func (p *Plot) Add(s Series) {
	if s.Color == "" {
		s.Color = defaultPalette[len(p.Series)%len(defaultPalette)]
	}
	p.Series = append(p.Series, s)
}

func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			if s.X[i] > 0 {
				xmin = math.Min(xmin, s.X[i])
				xmax = math.Max(xmax, s.X[i])
			}
			if s.Y[i] > 0 {
				ymin = math.Min(ymin, s.Y[i])
				ymax = math.Max(ymax, s.Y[i])
			}
		}
	}
	if p.XMin > 0 {
		xmin = p.XMin
	}
	if p.XMax > 0 {
		xmax = p.XMax
	}
	if p.YMin > 0 {
		ymin = p.YMin
	}
	if p.YMax > 0 {
		ymax = p.YMax
	}
	if math.IsInf(xmin, 1) { // empty plot
		xmin, xmax, ymin, ymax = 0.1, 10, 0.1, 10
	}
	return
}

// Render writes the SVG.
func (p *Plot) Render(w io.Writer) error {
	if p.W == 0 {
		p.W = 640
	}
	if p.H == 0 {
		p.H = 480
	}
	const mL, mR, mT, mB = 70, 160, 40, 55
	plotW := float64(p.W - mL - mR)
	plotH := float64(p.H - mT - mB)
	xmin, xmax, ymin, ymax := p.bounds()
	lx := func(v float64) float64 {
		return mL + plotW*(math.Log10(v)-math.Log10(xmin))/(math.Log10(xmax)-math.Log10(xmin))
	}
	ly := func(v float64) float64 {
		return mT + plotH*(1-(math.Log10(v)-math.Log10(ymin))/(math.Log10(ymax)-math.Log10(ymin)))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		p.W, p.H, p.W, p.H)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", p.W, p.H)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
		p.W/2, esc(p.Title))

	// Gridlines at decades.
	for _, d := range decades(xmin, xmax) {
		x := lx(d)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n", x, mT, x, p.H-mB)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, p.H-mB+16, fmtTick(d))
	}
	for _, d := range decades(ymin, ymax) {
		y := ly(d)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", mL, y, p.W-mR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			mL-6, y+4, fmtTick(d))
	}
	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="black"/>`+"\n",
		mL, mT, plotW, plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n",
		mL+int(plotW)/2, p.H-12, esc(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		mT+int(plotH)/2, mT+int(plotH)/2, esc(p.YLabel))

	// Series.
	for si, s := range p.Series {
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		if len(s.X) > 1 {
			var pts []string
			for i := range s.X {
				if s.X[i] <= 0 || s.Y[i] <= 0 {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", lx(s.X[i]), ly(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"%s/>`+"\n",
				strings.Join(pts, " "), s.Color, dash)
		}
		if s.Markers {
			for i := range s.X {
				if s.X[i] <= 0 || s.Y[i] <= 0 {
					continue
				}
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" stroke="black" stroke-width="0.5"/>`+"\n",
					lx(s.X[i]), ly(s.Y[i]), s.Color)
			}
		}
		// Legend entry.
		lyTop := mT + 14 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			p.W-mR+8, lyTop-4, p.W-mR+30, lyTop-4, s.Color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			p.W-mR+34, lyTop, esc(s.Name))
	}
	fmt.Fprintln(&b, "</svg>")
	_, err := io.WriteString(w, b.String())
	return err
}

// decades returns powers of ten spanning [lo, hi].
func decades(lo, hi float64) []float64 {
	var out []float64
	for e := math.Floor(math.Log10(lo)); e <= math.Ceil(math.Log10(hi)); e++ {
		d := math.Pow(10, e)
		if d >= lo/1.001 && d <= hi*1.001 {
			out = append(out, d)
		}
	}
	sort.Float64s(out)
	return out
}

func fmtTick(v float64) string {
	if v >= 1000 || v < 0.01 {
		return fmt.Sprintf("1e%0.f", math.Log10(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
