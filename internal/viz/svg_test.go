package viz

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"xmtfft/internal/stats"
)

// wellFormed decodes the SVG as XML, failing on malformed output.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestPlotRenderBasics(t *testing.T) {
	p := Plot{Title: "t < & >", XLabel: "x", YLabel: "y"}
	p.Add(Series{Name: "line", X: []float64{0.1, 1, 10}, Y: []float64{1, 10, 100}})
	p.Add(Series{Name: "dots", X: []float64{0.5, 5}, Y: []float64{2, 20}, Markers: true, Dashed: true})
	var b bytes.Buffer
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wellFormed(t, out)
	for _, want := range []string{"<svg", "polyline", "circle", "t &lt; &amp; &gt;", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Colors auto-assigned and distinct.
	if p.Series[0].Color == p.Series[1].Color {
		t.Error("palette assigned identical colors")
	}
}

func TestPlotEmptySeries(t *testing.T) {
	p := Plot{Title: "empty"}
	var b bytes.Buffer
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
}

func TestPlotSkipsNonPositive(t *testing.T) {
	p := Plot{}
	p.Add(Series{Name: "mixed", X: []float64{-1, 0, 1, 10}, Y: []float64{1, 1, 1, 10}, Markers: true})
	var b bytes.Buffer
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
	// Only the two positive points produce markers.
	if got := strings.Count(b.String(), "<circle"); got != 2 {
		t.Errorf("marker count = %d, want 2", got)
	}
}

func TestFig3SVG(t *testing.T) {
	var b bytes.Buffer
	if err := Fig3SVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wellFormed(t, out)
	for _, want := range []string{"4k roof", "128k x4 phases", "Roofline", "FLOPs/byte"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 SVG missing %q", want)
		}
	}
	// Five configs x (roof line + 3 markers): at least 15 circles.
	if got := strings.Count(out, "<circle"); got != 15 {
		t.Errorf("marker count = %d, want 15", got)
	}
}

func TestScalingSVG(t *testing.T) {
	var b bytes.Buffer
	if err := ScalingSVG(&b); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
	if !strings.Contains(b.String(), "Strong scaling") {
		t.Error("missing title")
	}
}

func TestDecadesAndTicks(t *testing.T) {
	d := decades(0.05, 16)
	if len(d) < 3 {
		t.Fatalf("decades = %v", d)
	}
	for i := 1; i < len(d); i++ {
		if d[i] <= d[i-1] {
			t.Fatal("decades not increasing")
		}
	}
	if fmtTick(0.1) != "0.1" || fmtTick(1) != "1" {
		t.Errorf("ticks: %s %s", fmtTick(0.1), fmtTick(1))
	}
	if fmtTick(10000) != "1e4" {
		t.Errorf("big tick: %s", fmtTick(10000))
	}
}

func TestTimelineSVG(t *testing.T) {
	run := stats.Run{Label: "fft3d 32x32x32", Phases: []stats.Phase{
		{Name: "twiddle init r0", Cycles: 50, Ops: stats.Counters{FPOps: 100}},
		{Name: "fft r0 p0", Cycles: 400, Ops: stats.Counters{FPOps: 4000}},
		{Name: "rotate r0", Cycles: 250, Ops: stats.Counters{FPOps: 2000}},
	}}
	var b bytes.Buffer
	if err := TimelineSVG(&b, run); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wellFormed(t, out)
	for _, want := range []string{"700 cycles", "fused rotation", "twiddle maintenance", "#d62728"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	if err := TimelineSVG(&b, stats.Run{}); err == nil {
		t.Error("empty run accepted")
	}
}

func TestWeakScalingSVG(t *testing.T) {
	var b bytes.Buffer
	if err := WeakScalingSVG(&b); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
	if !strings.Contains(b.String(), "Weak scaling") {
		t.Error("missing title")
	}
}
