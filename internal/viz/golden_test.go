package viz

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmtfft/internal/stats"
	"xmtfft/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare checks got against testdata/<name>, rewriting the file
// under -update.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/viz -update` to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file; run with -update after verifying the change", name)
	}
}

// goldenRun is a fixed, deterministic input shared by the golden tests.
func goldenRun() stats.Run {
	return stats.Run{Label: "golden fft2d 16x16", Phases: []stats.Phase{
		{Name: "twiddle init r0", Cycles: 120, Ops: stats.Counters{FPOps: 600, Threads: 16},
			Util: stats.Util{FPU: 0.15, LSU: 0.30, DRAM: 0.05}},
		{Name: "fft r0 p0", Cycles: 900, Ops: stats.Counters{FPOps: 8000, Threads: 32},
			Util: stats.Util{FPU: 0.55, LSU: 0.80, DRAM: 0.65}},
		{Name: "twiddle decay r0 p0", Cycles: 80, Ops: stats.Counters{FPOps: 0, Threads: 16},
			Util: stats.Util{FPU: 0.02, LSU: 0.40, DRAM: 0.20}},
		{Name: "rotate r0", Cycles: 500, Ops: stats.Counters{FPOps: 4000, Threads: 32},
			Util: stats.Util{FPU: 0.35, LSU: 0.90, DRAM: 0.85}},
	}}
}

func goldenSamples() []trace.Sample {
	var out []trace.Sample
	for i := 1; i <= 12; i++ {
		f := float64(i) / 12
		out = append(out, trace.Sample{
			Cycle:       uint64(i) * 128,
			FPU:         0.2 + 0.5*f,
			LSU:         0.9 - 0.4*f,
			DRAM:        f,
			HitRate:     1 - 0.3*f,
			Outstanding: 48 - 4*i,
			NoCPackets:  uint64(100 * i),
		})
	}
	return out
}

func TestTimelineSVGGolden(t *testing.T) {
	run := goldenRun()
	var a, b bytes.Buffer
	if err := TimelineSVG(&a, run); err != nil {
		t.Fatal(err)
	}
	if err := TimelineSVG(&b, run); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	wellFormed(t, out)
	if out != b.String() {
		t.Fatal("TimelineSVG output is not deterministic")
	}
	// One bar per phase: phase bars are the only white-stroked rects.
	if got := strings.Count(out, `stroke="white"`); got != len(run.Phases) {
		t.Errorf("phase bar count = %d, want %d", got, len(run.Phases))
	}
	goldenCompare(t, "timeline.svg", a.Bytes())
}

func TestUtilizationSVGGolden(t *testing.T) {
	samples := goldenSamples()
	var a, b bytes.Buffer
	if err := UtilizationSVG(&a, "golden 4k/64", 128, samples); err != nil {
		t.Fatal(err)
	}
	if err := UtilizationSVG(&b, "golden 4k/64", 128, samples); err != nil {
		t.Fatal(err)
	}
	out := a.String()
	wellFormed(t, out)
	if out != b.String() {
		t.Fatal("UtilizationSVG output is not deterministic")
	}
	// Five rows x one cell per sample, plus the background rect.
	wantCells := 5*len(samples) + 1
	if got := strings.Count(out, "<rect"); got != wantCells {
		t.Errorf("cell count = %d, want %d", got, wantCells)
	}
	for _, want := range []string{"fpu", "dram", "cache hit", "threads", "128-cycle epochs", "cycle 1536"} {
		if !strings.Contains(out, want) {
			t.Errorf("utilization SVG missing %q", want)
		}
	}
	goldenCompare(t, "utilization.svg", a.Bytes())
}

func TestUtilizationSVGEmptyAndDownsample(t *testing.T) {
	if err := UtilizationSVG(&bytes.Buffer{}, "x", 64, nil); err == nil {
		t.Error("empty sample set accepted")
	}
	// 1000 samples must downsample below the column cap.
	var many []trace.Sample
	for i := 0; i < 1000; i++ {
		many = append(many, trace.Sample{Cycle: uint64(i), FPU: 0.5})
	}
	var b bytes.Buffer
	if err := UtilizationSVG(&b, "big", 1, many); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, b.String())
	if got := strings.Count(b.String(), "<rect"); got > 5*256+1 {
		t.Errorf("downsampling failed: %d rects", got)
	}
}

func TestHeatRamp(t *testing.T) {
	if heat(0) != "#ffffff" {
		t.Errorf("heat(0) = %s", heat(0))
	}
	if heat(1) != "#a50f15" {
		t.Errorf("heat(1) = %s", heat(1))
	}
	if heat(-2) != heat(0) || heat(3) != heat(1) {
		t.Error("heat does not clamp out-of-range values")
	}
}
