package viz

import (
	"fmt"
	"io"
	"strings"

	"xmtfft/internal/stats"
)

// TimelineSVG renders a Run's phases as a horizontal timeline (one bar
// per phase, width proportional to cycles, colored by phase class) —
// the at-a-glance view of where a simulated FFT spends its time.
func TimelineSVG(w io.Writer, run stats.Run) error {
	total := run.TotalCycles()
	if total == 0 {
		return fmt.Errorf("viz: empty run")
	}
	const width, rowH, mL, mT = 820, 26, 10, 46
	height := mT + rowH + 90

	classColor := func(name string) string {
		switch {
		case strings.HasPrefix(name, "rotate"):
			return "#d62728"
		case strings.HasPrefix(name, "twiddle"):
			return "#9467bd"
		case strings.HasPrefix(name, "coarse"):
			return "#ff7f0e"
		default:
			return "#1f77b4"
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15">%s — %d cycles</text>`+"\n",
		mL, esc(run.Label), total)

	x := float64(mL)
	usable := float64(width - 2*mL)
	for _, p := range run.Phases {
		frac := float64(p.Cycles) / float64(total)
		bw := frac * usable
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="white" stroke-width="0.5"/>`+"\n",
			x, mT, bw, rowH, classColor(p.Name))
		if bw > 34 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" fill="white">%s</text>`+"\n",
				x+3, mT+16, esc(shorten(p.Name)))
		}
		x += bw
	}

	// Legend + phase-class summary.
	classes := []struct{ label, prefix string }{
		{"fft pass", "fft"}, {"fused rotation", "rotate"}, {"twiddle maintenance", "twiddle"},
	}
	y := mT + rowH + 26
	for _, cl := range classes {
		m := run.Merged(cl.label, func(p stats.Phase) bool { return strings.HasPrefix(p.Name, cl.prefix) })
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", mL, y-10, classColor(cl.prefix))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s: %d cycles (%.0f%%), %d FLOPs</text>`+"\n",
			mL+18, y, esc(cl.label), m.Cycles, 100*float64(m.Cycles)/float64(total), m.Ops.FPOps)
		y += 20
	}
	fmt.Fprintln(&b, "</svg>")
	_, err := io.WriteString(w, b.String())
	return err
}

func shorten(s string) string {
	if len(s) > 14 {
		return s[:14]
	}
	return s
}
