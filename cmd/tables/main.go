// Command tables regenerates the paper's evaluation tables (I-VI) and
// the §VI-A silicon comparison, printing published values beside the
// values this repository reproduces.
//
// Usage:
//
//	tables             # everything
//	tables -table 4    # one table
//	tables -host       # additionally measure this host's Go FFT
//	                   # (the runnable FFTW substitute)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"xmtfft/internal/baseline"
	"xmtfft/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "table number 1-6 (0 = all)")
	host := flag.Bool("host", false, "also measure the host Go FFT baseline")
	hostN := flag.Int("hostn", 128, "per-dimension size for -host (power of two)")
	ablation := flag.Bool("ablation", false, "also run the §IV-A design ablations on the detailed simulator")
	csvOut := flag.Bool("csv", false, "emit Tables IV and V as CSV instead of text")
	flag.Parse()

	if *csvOut {
		if err := harness.TableIVCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := harness.TableVCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		return
	}

	out := os.Stdout
	var err error
	switch *table {
	case 0:
		err = harness.All(out)
	case 1:
		err = harness.TableI(out)
	case 2:
		err = harness.TableII(out)
	case 3:
		err = harness.TableIII(out)
	case 4:
		err = harness.TableIV(out)
	case 5:
		err = harness.TableV(out)
	case 6:
		err = harness.TableVI(out)
	default:
		err = fmt.Errorf("unknown table %d", *table)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	if *ablation {
		fmt.Println()
		if err := harness.AblationReport(os.Stdout, 1024, 32); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
	}

	if *host {
		fmt.Println("\nHost FFTW-substitute measurement (this repo's Go FFT):")
		serial, err := baseline.MeasureHost3D(*hostN, 1, 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Printf("  serial     %d^3: %8.2f GFLOPS (%v)\n", serial.N, serial.GFLOPS, serial.Elapsed)
		par, err := baseline.MeasureHost3D(*hostN, runtime.GOMAXPROCS(0), 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Printf("  %2d workers %d^3: %8.2f GFLOPS (%v), %.1fx self-speedup\n",
			par.Workers, par.N, par.GFLOPS, par.Elapsed, par.GFLOPS/serial.GFLOPS)
		fmt.Printf("  (paper's published FFTW reference: %.2f serial / %.1f with 32 threads)\n",
			baseline.FFTWSerialGFLOPS, baseline.FFTWParallelGFLOPS)
	}
}
