// Command xmtfft runs a single-precision FFT on a simulated XMT machine
// and reports cycles, per-phase breakdown and GFLOPS. Two modes:
//
//   - detailed (default): event-driven simulation of a (scaled) machine
//     executing the real kernel at a tractable size;
//   - -model: the analytic projection used for the paper-scale results.
//
// Examples:
//
//	xmtfft -config 4k -tcus 1024 -n 32 -dims 3
//	xmtfft -config 4k -tcus 1024 -n 32 -sim-workers 4   # sharded engine
//	xmtfft -config "128k x4" -model -n 512
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"time"

	"xmtfft/internal/ckpt"
	"xmtfft/internal/config"
	"xmtfft/internal/core"
	"xmtfft/internal/fault"
	"xmtfft/internal/fft"
	"xmtfft/internal/harness"
	"xmtfft/internal/model"
	"xmtfft/internal/stats"
	"xmtfft/internal/trace"
	"xmtfft/internal/viz"
	"xmtfft/internal/xmt"
)

func main() {
	cfgName := flag.String("config", "4k", `configuration: "4k", "8k", "64k", "128k x2", "128k x4"`)
	tcus := flag.Int("tcus", 0, "scale the machine down to this many TCUs for detailed simulation (0 = full size)")
	n := flag.Int("n", 32, "points per dimension (power of two)")
	dims := flag.Int("dims", 3, "1, 2 or 3 dimensions")
	useModel := flag.Bool("model", false, "use the analytic projection instead of detailed simulation")
	coarse := flag.Bool("coarse", false, "coarse-grained kernel (one thread per row) instead of fine-grained")
	radix := flag.Int("radix", 0, "force a fixed pass radix (2, 4 or 8; 0 = greedy radix-8)")
	verbose := flag.Bool("v", false, "print per-phase breakdown")
	jsonOut := flag.String("json", "", "write the per-phase record as JSON to this path")
	csvOut := flag.String("csv", "", "write the per-phase record as CSV to this path")
	timeline := flag.String("timeline", "", "write a phase-timeline SVG to this path")
	tracePath := flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON trace to this path (detailed mode)")
	traceEpoch := flag.Uint64("trace-epoch", 256, "utilization sampling interval in cycles for -trace / -util-svg")
	utilSVG := flag.String("util-svg", "", "write an epoch-utilization heat-strip SVG to this path (detailed mode)")
	simWorkers := flag.Int("sim-workers", 0, "simulation worker count: 0 = legacy serial engine, >= 1 = sharded parallel engine")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	serveObs := flag.String("serve-obs", "", "serve live observability (/metrics, /progress, /debug/pprof) on this address while the simulation runs, e.g. :9100")
	obsSnapshot := flag.String("obs-snapshot", "", "periodically write the OpenMetrics exposition to this path (atomic replace)")
	obsSnapshotEvery := flag.Duration("obs-snapshot-every", 10*time.Second, "interval between -obs-snapshot writes")
	obsEpoch := flag.Uint64("obs-epoch", 4096, "live-metrics sampling interval in simulated cycles for -serve-obs / -obs-snapshot")
	logLevel := flag.String("log-level", "info", "log verbosity on stderr: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault-injection streams")
	faultNoCDrop := flag.Float64("fault-noc-drop", 0, "per-packet NoC drop probability (recovered by retransmit)")
	faultNoCCorrupt := flag.Float64("fault-noc-corrupt", 0, "per-packet NoC corruption probability (detected by CRC, recovered by retransmit)")
	faultDRAMBER := flag.Float64("fault-dram-ber", 0, "per-line-fetch DRAM single-bit-error probability (corrected by SECDED ECC)")
	faultDRAMDBER := flag.Float64("fault-dram-dber", 0, "per-line-fetch DRAM double-bit-error probability (detected, not correctable)")
	faultNoECC := flag.Bool("fault-no-ecc", false, "disable the SECDED model: DRAM bit errors pass silently")
	faultKill := flag.Int("fault-kill-clusters", 0, "fail-stop this many clusters (chosen deterministically from -fault-seed)")
	watchdogWindow := flag.Uint64("watchdog-window", 0, "abort if no forward progress within this many simulated cycles (0 = off)")
	checkpointPath := flag.String("checkpoint", "", "write a resumable checkpoint to this path at phase boundaries (detailed fine-grained mode)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "phases between -checkpoint writes")
	resumePath := flag.String("resume", "", "resume from this checkpoint file (written by -checkpoint); unset flags adopt the checkpoint's values")
	flag.Parse()

	if err := validateFlags(cliFlags{
		n: *n, dims: *dims, radix: *radix, simWorkers: *simWorkers, tcus: *tcus,
		model: *useModel, coarse: *coarse, tracePath: *tracePath, utilSVG: *utilSVG, traceEpoch: *traceEpoch,
		serveObs: *serveObs, obsSnapshot: *obsSnapshot,
		obsSnapshotEvery: *obsSnapshotEvery, obsEpoch: *obsEpoch,
		faultNoCDrop: *faultNoCDrop, faultNoCCorrupt: *faultNoCCorrupt,
		faultDRAMBER: *faultDRAMBER, faultDRAMDBER: *faultDRAMDBER,
		faultKill: *faultKill, watchdogWindow: *watchdogWindow,
		checkpoint: *checkpointPath, checkpointEvery: *checkpointEvery, resume: *resumePath,
	}); err != nil {
		usageError(err)
	}
	if _, err := harness.SetupLogger(*logLevel, *logJSON); err != nil {
		usageError(err)
	}

	// Runs last (deferred first): an interrupted run exits with code 3
	// after the other defers have flushed profiles and observability.
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	stopProfiles, err := harness.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
		if *memProfile != "" {
			fmt.Println("wrote", *memProfile)
		}
	}()

	cfg, err := config.ByName(*cfgName)
	if err != nil {
		fatal(err)
	}

	if *useModel {
		if *dims != 3 {
			fatal(fmt.Errorf("the analytic model covers 3D transforms"))
		}
		p, err := model.Project3D(cfg, *n)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("analytic projection: %s, %d^3 single-precision complex 3D FFT\n", cfg, *n)
		fmt.Printf("  time %.4g s  |  %.0f GFLOPS (5NlogN convention)\n", p.Overall.TimeSec, p.GFLOPS)
		for _, ph := range []model.PhasePoint{p.Stream, p.Rotation, p.Overall} {
			fmt.Printf("  %-12s %8.4g s  %9.0f GFLOPS actual  intensity %.3f FLOPs/B\n",
				ph.Name, ph.TimeSec, ph.ActualGFLOPS, ph.Intensity)
		}
		return
	}

	// Resume adopts the checkpoint's machine and workload parameters;
	// explicitly-set flags that contradict it are usage errors.
	set := setFlags()
	var resumed *ckpt.Checkpoint
	if *resumePath != "" {
		c, err := ckpt.Read(*resumePath)
		if err != nil {
			fatal(err)
		}
		if err := checkResumeConflicts(c.Meta, set, resumeView{
			cfgName: *cfgName, tcus: *tcus, n: *n, dims: *dims, radix: *radix,
			simWorkers: *simWorkers, watchdogWindow: *watchdogWindow,
			faultSeed: *faultSeed, faultNoCDrop: *faultNoCDrop, faultNoCCorrupt: *faultNoCCorrupt,
			faultDRAMBER: *faultDRAMBER, faultDRAMDBER: *faultDRAMDBER,
			faultNoECC: *faultNoECC, faultKill: *faultKill,
		}); err != nil {
			usageError(err)
		}
		resumed = c
		if !set["sim-workers"] {
			*simWorkers = c.Meta.Workers
		}
		*n, *dims, *radix = c.Meta.Dims[2], c.Meta.DimCount, c.Meta.Radix
		*watchdogWindow = c.Meta.WatchdogWindow
	}

	var (
		m    *xmt.Machine
		tr   *core.Transform
		plan fault.Plan
	)
	if resumed != nil {
		cfg = resumed.Meta.Config
		plan = resumed.Meta.Plan
		m, tr, err = resumed.Restore(*resumePath, *simWorkers)
		if err != nil {
			fatal(err)
		}
		slog.Info("resumed from checkpoint", "path", *resumePath,
			"phase", fmt.Sprintf("%d/%d", resumed.Meta.PhasesDone, resumed.Meta.TotalPhases),
			"cycle", resumed.Meta.Cycle, "workers", *simWorkers)
	} else {
		if *tcus != 0 {
			if cfg, err = cfg.Scaled(*tcus); err != nil {
				fatal(err)
			}
		}
		if *simWorkers > 0 {
			m, err = xmt.NewParallel(cfg, *simWorkers)
		} else {
			m, err = xmt.New(cfg)
		}
		if err != nil {
			fatal(err)
		}
		plan = fault.Plan{
			Seed: *faultSeed, NoCDrop: *faultNoCDrop, NoCCorrupt: *faultNoCCorrupt,
			DRAMBitErr: *faultDRAMBER, DRAMDoubleBitErr: *faultDRAMDBER, NoECC: *faultNoECC,
		}
		if *faultKill > 0 {
			plan.KillClusters = fault.PickClusters(*faultSeed, *faultKill, cfg.Clusters)
		}
		if plan.Active() {
			if err := m.EnableFaults(plan); err != nil {
				fatal(err)
			}
		}
		if *watchdogWindow > 0 {
			m.SetWatchdog(*watchdogWindow)
		}
	}
	var obs *harness.Obs
	if *serveObs != "" || *obsSnapshot != "" {
		obs = harness.NewObs()
		obs.Epoch = *obsEpoch
		if *serveObs != "" {
			addr, err := obs.Serve(*serveObs)
			if err != nil {
				fatal(err)
			}
			slog.Info("observability server listening", "addr", addr,
				"endpoints", "/metrics /progress /debug/pprof/")
		}
		if *obsSnapshot != "" {
			obs.StartSnapshots(*obsSnapshot, *obsSnapshotEvery, func(err error) {
				slog.Warn("metrics snapshot failed", "err", err)
			})
		}
		obs.SetWork(1)
		obs.Watch(m)
		defer obs.Close()
	}
	var rec *trace.Recorder
	if *tracePath != "" || *utilSVG != "" {
		rec = trace.NewRecorder(*traceEpoch)
		rec.Label = cfg.Name
		m.AttachRecorder(rec)
	}
	if tr == nil {
		switch *dims {
		case 1:
			tr, err = core.New1D(m, *n)
		case 2:
			tr, err = core.New2D(m, *n, *n)
		case 3:
			tr, err = core.New3D(m, *n, *n, *n)
		default:
			err = fmt.Errorf("dims must be 1, 2 or 3")
		}
		if err != nil {
			fatal(err)
		}
		if *radix != 0 {
			if err := tr.SetFixedRadix(*radix); err != nil {
				fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(1))
		for i := range tr.Data {
			tr.Data[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
		}
	}

	// Checkpoint meta describes this run; it is also the post-mortem
	// header. On resume the original meta carries forward (only the
	// worker count may differ within the same engine kind).
	meta := ckpt.Meta{
		Config: cfg, Workers: *simWorkers,
		DimCount: *dims, Dims: dimsOf(*dims, *n), Radix: *radix, Dir: int(fft.Forward),
		Plan: plan, WatchdogWindow: *watchdogWindow,
	}
	if resumed != nil {
		meta = resumed.Meta
		meta.Workers = *simWorkers
	}
	if !*coarse {
		if meta.TotalPhases, err = tr.NumPhases(); err != nil {
			fatal(err)
		}
	}
	pmPath := "xmtfft.postmortem.ckpt"
	if *checkpointPath != "" {
		pmPath = *checkpointPath + ".postmortem"
	}
	installPostMortem(m, pmPath, &meta)
	stopped := notifyStop()

	before := m.Snapshot()
	var run stats.Run
	if *coarse {
		run, err = tr.RunCoarse(fft.Forward)
	} else {
		writeCkpt := func(done int, partial *stats.Run) error {
			meta.PhasesDone = done
			c, cerr := ckpt.Capture(m, tr, meta, tr.ResumeSnapshot(fft.Forward, done, *partial))
			if cerr != nil {
				return cerr
			}
			nbytes, cerr := ckpt.Write(*checkpointPath, c)
			if cerr != nil {
				return cerr
			}
			if obs != nil {
				obs.RecordCheckpoint(nbytes, c.Meta.Cycle)
			}
			slog.Info("checkpoint written", "path", *checkpointPath,
				"phase", fmt.Sprintf("%d/%d", done, meta.TotalPhases),
				"cycle", c.Meta.Cycle, "bytes", nbytes)
			return nil
		}
		ctl := core.RunControl{AfterPhase: func(done int, partial *stats.Run) error {
			stop := stopped.Load()
			if *checkpointPath != "" && done < meta.TotalPhases && (stop || done%*checkpointEvery == 0) {
				if cerr := writeCkpt(done, partial); cerr != nil {
					return cerr
				}
			}
			if stop {
				return harness.ErrInterrupted
			}
			return nil
		}}
		if resumed != nil {
			ctl.Resume = resumed.Workload
		}
		run, err = tr.RunCheckpointed(fft.Forward, ctl)
	}
	interrupted := errors.Is(err, harness.ErrInterrupted)
	if err != nil && !interrupted {
		fatal(err)
	}
	if obs != nil {
		m.FlushLiveMetrics()
		obs.AddWork(1)
	}
	util := m.UtilizationSince(before)
	cycles := run.TotalCycles()
	total := tr.N()
	fmt.Printf("detailed simulation: %s\n", cfg)
	if interrupted {
		fmt.Printf("  INTERRUPTED at phase %d/%d (totals below are partial)\n", len(run.Phases), meta.TotalPhases)
		if *checkpointPath != "" {
			fmt.Printf("  resume with: -resume %s\n", *checkpointPath)
		}
	}
	fmt.Printf("  %dD FFT, %d points: %d cycles (%.4g s at %.1f GHz)\n",
		*dims, total, cycles, stats.Seconds(cycles, config.ClockGHz), config.ClockGHz)
	fmt.Printf("  %.2f GFLOPS (5NlogN convention), %.2f GFLOPS actual\n",
		stats.StandardGFLOPS(total, cycles, config.ClockGHz), run.GFLOPS(config.ClockGHz))
	ops := run.TotalOps()
	fmt.Printf("  ops: %d flops, %d loads, %d stores, %d threads, cache hit rate %.1f%%, DRAM %d bytes\n",
		ops.FPOps, ops.Loads, ops.Stores, ops.Threads, ops.HitRate()*100, ops.DRAMBytes)
	fmt.Printf("  utilization: FPU %.0f%%, LSU %.0f%%, DRAM %.0f%%\n", util.FPU*100, util.LSU*100, util.DRAM*100)
	if !interrupted {
		// Bit-exact digest of the transform output; a resumed run must
		// reproduce the uninterrupted run's digest exactly.
		fmt.Printf("  output sha256: %x\n", outputDigest(tr.Data))
	}
	if plan.Active() {
		c := m.Counters
		fmt.Printf("  faults (seed %d): noc drops %d, corrupts %d, retransmits %d; ecc corrected %d, uncorrectable %d, silent %d\n",
			plan.Seed, c.NoCDropped, c.NoCCorrupted, c.NoCRetransmits,
			c.ECCCorrected, c.ECCUncorrectable, c.SilentFaults)
		if dead := m.DeadClusters(); len(dead) > 0 {
			fmt.Printf("  dead clusters: %v (threads remapped to the %d survivors)\n",
				dead, cfg.Clusters-len(dead))
		}
	}
	if *verbose {
		fmt.Print(run.String())
		if rec != nil {
			if err := rec.WriteSummary(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	writeFile := func(path string, f func(io.Writer) error) {
		if path == "" {
			return
		}
		if err := harness.WriteFileAtomic(path, f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	writeFile(*jsonOut, func(w io.Writer) error { return run.WriteJSON(w) })
	writeFile(*csvOut, func(w io.Writer) error { return run.WriteCSV(w) })
	writeFile(*timeline, func(w io.Writer) error { return viz.TimelineSVG(w, run) })
	if rec != nil {
		writeFile(*tracePath, func(w io.Writer) error { return rec.WritePerfetto(w) })
		writeFile(*utilSVG, func(w io.Writer) error {
			return viz.UtilizationSVG(w, cfg.Name, rec.Epoch, rec.Samples)
		})
	}
	if interrupted {
		exitCode = exitInterrupted
	}
}

// fatal reports a runtime failure through the structured logger (text
// or JSON per -log-json) and exits with status 1. Usage errors keep
// plain stderr output (usageError) because they can occur before the
// logger is configured.
func fatal(err error) {
	slog.Error("xmtfft failed", "err", err)
	os.Exit(1)
}

// usageError reports an invalid flag combination and exits with the
// conventional usage-error status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "xmtfft:", err)
	fmt.Fprintln(os.Stderr, "run with -h for flag documentation")
	os.Exit(2)
}
