package main

// Flag validation, separated from main so it is a pure function over
// the parsed values and unit-testable. Violations are user errors, not
// program failures: main reports them on stderr and exits with status 2
// (the conventional usage-error code), distinct from the status-1
// runtime failures in fatal.

import (
	"fmt"
	"time"

	"xmtfft/internal/fft"
)

// cliFlags is the subset of xmtfft's flags that can be invalid in ways
// flag parsing itself does not catch.
type cliFlags struct {
	n          int
	dims       int
	radix      int
	simWorkers int
	tcus       int
	model      bool
	coarse     bool
	tracePath  string
	utilSVG    string
	traceEpoch uint64

	checkpoint      string
	checkpointEvery int
	resume          string

	serveObs         string
	obsSnapshot      string
	obsSnapshotEvery time.Duration
	obsEpoch         uint64

	faultNoCDrop    float64
	faultNoCCorrupt float64
	faultDRAMBER    float64
	faultDRAMDBER   float64
	faultKill       int
	watchdogWindow  uint64
}

// rate01 checks a probability flag.
func rate01(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%s is a probability and must be in [0, 1], got %g", name, v)
	}
	return nil
}

// validateFlags returns the first violation with an actionable message,
// or nil when the combination is runnable.
func validateFlags(f cliFlags) error {
	if !fft.IsPowerOfTwo(f.n) {
		return fmt.Errorf("-n must be a power of two, got %d (try %d)", f.n, nextPow2(f.n))
	}
	if f.dims < 1 || f.dims > 3 {
		return fmt.Errorf("-dims must be 1, 2 or 3, got %d", f.dims)
	}
	switch f.radix {
	case 0, 2, 4, 8:
	default:
		return fmt.Errorf("-radix must be 2, 4 or 8 (or 0 for greedy), got %d", f.radix)
	}
	if f.simWorkers < 0 {
		return fmt.Errorf("-sim-workers must be >= 0 (0 selects the legacy serial engine), got %d", f.simWorkers)
	}
	if f.tcus < 0 {
		return fmt.Errorf("-tcus must be >= 0 (0 keeps the full machine size), got %d", f.tcus)
	}
	if (f.tracePath != "" || f.utilSVG != "") && f.traceEpoch == 0 {
		return fmt.Errorf("-trace-epoch must be positive when -trace or -util-svg is set")
	}
	if f.model && (f.tracePath != "" || f.utilSVG != "") {
		return fmt.Errorf("-trace and -util-svg require detailed simulation (drop -model)")
	}
	if f.model && (f.serveObs != "" || f.obsSnapshot != "") {
		return fmt.Errorf("-serve-obs and -obs-snapshot require detailed simulation (drop -model)")
	}
	if (f.serveObs != "" || f.obsSnapshot != "") && f.obsEpoch == 0 {
		return fmt.Errorf("-obs-epoch must be positive when -serve-obs or -obs-snapshot is set")
	}
	if f.obsSnapshot != "" && f.obsSnapshotEvery <= 0 {
		return fmt.Errorf("-obs-snapshot-every must be positive, got %v", f.obsSnapshotEvery)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"-fault-noc-drop", f.faultNoCDrop},
		{"-fault-noc-corrupt", f.faultNoCCorrupt},
		{"-fault-dram-ber", f.faultDRAMBER},
		{"-fault-dram-dber", f.faultDRAMDBER},
	} {
		if err := rate01(r.name, r.v); err != nil {
			return err
		}
	}
	if s := f.faultNoCDrop + f.faultNoCCorrupt; s > 1 {
		return fmt.Errorf("-fault-noc-drop + -fault-noc-corrupt must not exceed 1, got %g", s)
	}
	if s := f.faultDRAMBER + f.faultDRAMDBER; s > 1 {
		return fmt.Errorf("-fault-dram-ber + -fault-dram-dber must not exceed 1, got %g", s)
	}
	if f.faultKill < 0 {
		return fmt.Errorf("-fault-kill-clusters is a cluster count and must be >= 0, got %d", f.faultKill)
	}
	if f.model && (f.faultNoCDrop > 0 || f.faultNoCCorrupt > 0 || f.faultDRAMBER > 0 ||
		f.faultDRAMDBER > 0 || f.faultKill > 0 || f.watchdogWindow > 0) {
		return fmt.Errorf("fault injection requires detailed simulation (drop -model)")
	}
	if f.checkpoint != "" || f.resume != "" {
		if f.model {
			return fmt.Errorf("-checkpoint and -resume require detailed simulation (drop -model)")
		}
		if f.coarse {
			return fmt.Errorf("-checkpoint and -resume cover the fine-grained kernel only (drop -coarse)")
		}
	}
	if f.checkpoint != "" && f.checkpointEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1 phase, got %d", f.checkpointEvery)
	}
	return nil
}

// nextPow2 suggests the next power of two >= n (for error messages).
func nextPow2(n int) int {
	p := 1
	for p < n && p < 1<<30 {
		p <<= 1
	}
	return p
}
