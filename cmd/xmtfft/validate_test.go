package main

import (
	"strings"
	"testing"
)

// ok returns a runnable baseline flag set; tests mutate one field each.
func okFlags() cliFlags {
	return cliFlags{n: 32, dims: 3, traceEpoch: 256}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string // empty = valid
	}{
		{"baseline", func(f *cliFlags) {}, ""},
		{"n not power of two", func(f *cliFlags) { f.n = 100 }, "power of two"},
		{"n zero", func(f *cliFlags) { f.n = 0 }, "power of two"},
		{"dims too big", func(f *cliFlags) { f.dims = 4 }, "-dims"},
		{"radix odd", func(f *cliFlags) { f.radix = 3 }, "-radix"},
		{"radix 8 ok", func(f *cliFlags) { f.radix = 8 }, ""},
		{"negative workers", func(f *cliFlags) { f.simWorkers = -1 }, "-sim-workers"},
		{"negative tcus", func(f *cliFlags) { f.tcus = -4 }, "-tcus"},
		{"trace with zero epoch", func(f *cliFlags) { f.tracePath = "t.json"; f.traceEpoch = 0 }, "-trace-epoch"},
		{"trace under model", func(f *cliFlags) { f.model = true; f.tracePath = "t.json" }, "-model"},
		{"drop rate above 1", func(f *cliFlags) { f.faultNoCDrop = 1.5 }, "[0, 1]"},
		{"negative ber", func(f *cliFlags) { f.faultDRAMBER = -0.1 }, "[0, 1]"},
		{"noc rates sum above 1", func(f *cliFlags) { f.faultNoCDrop = 0.6; f.faultNoCCorrupt = 0.6 }, "exceed 1"},
		{"dram rates sum above 1", func(f *cliFlags) { f.faultDRAMBER = 0.7; f.faultDRAMDBER = 0.7 }, "exceed 1"},
		{"negative kill count", func(f *cliFlags) { f.faultKill = -1 }, "-fault-kill-clusters"},
		{"faults under model", func(f *cliFlags) { f.model = true; f.faultNoCDrop = 0.1 }, "-model"},
		{"watchdog under model", func(f *cliFlags) { f.model = true; f.watchdogWindow = 1000 }, "-model"},
		{"full fault plan ok", func(f *cliFlags) {
			f.faultNoCDrop = 0.02
			f.faultNoCCorrupt = 0.01
			f.faultDRAMBER = 0.05
			f.faultKill = 2
			f.watchdogWindow = 1 << 20
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := okFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
