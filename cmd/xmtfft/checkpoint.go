package main

// Checkpoint/resume and graceful-stop wiring (DESIGN.md §12). The
// simulation stops only at quiescent points (phase boundaries), so a
// signal requests a stop and the run loop honors it after the current
// phase, writing a resumable checkpoint when -checkpoint is set. Exit
// code 3 distinguishes an interrupted run from success (0), runtime
// failure (1) and usage errors (2).

import (
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"xmtfft/internal/ckpt"
	"xmtfft/internal/config"
	"xmtfft/internal/sim"
	"xmtfft/internal/xmt"
)

// exitInterrupted is the process exit code for a signal-stopped run.
const exitInterrupted = 3

// setFlags returns the names of flags explicitly set on the command
// line, to distinguish "defaulted" from "requested" on resume.
func setFlags() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// notifyStop installs the SIGINT/SIGTERM handler: the first signal
// requests a graceful stop at the next quiescent point; a second one
// aborts immediately with the interrupted exit code.
func notifyStop() *atomic.Bool {
	var stopped atomic.Bool
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		slog.Warn("signal received; stopping at the next quiescent point (send again to abort immediately)",
			"signal", s.String())
		stopped.Store(true)
		s = <-ch
		slog.Error("second signal; aborting without flushing", "signal", s.String())
		os.Exit(exitInterrupted)
	}()
	return &stopped
}

// installPostMortem arranges for a watchdog abort to leave a meta-only
// post-mortem dump (refused by resume, readable for diagnosis) before
// the poisoned run unwinds.
func installPostMortem(m *xmt.Machine, path string, meta *ckpt.Meta) {
	m.OnWatchdog(func(we *sim.WatchdogError) {
		if n, err := ckpt.WritePostMortem(path, *meta, we.Error()); err != nil {
			slog.Error("watchdog post-mortem write failed", "path", path, "err", err)
		} else {
			slog.Error("watchdog fired; post-mortem dump written", "path", path, "bytes", n)
		}
	})
}

// outputDigest hashes the transform output bit-exactly: each complex64
// as little-endian IEEE-754 bit patterns, real then imaginary. The CI
// kill-and-resume lane compares this line between a resumed run and an
// uninterrupted reference.
func outputDigest(data []complex64) [sha256.Size]byte {
	h := sha256.New()
	var b [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(b[0:4], math.Float32bits(real(v)))
		binary.LittleEndian.PutUint32(b[4:8], math.Float32bits(imag(v)))
		h.Write(b[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// dimsOf maps (-dims, -n) to the [3]int layout used by core.New1D/2D/3D
// and recorded in checkpoint meta.
func dimsOf(dims, n int) [3]int {
	switch dims {
	case 1:
		return [3]int{1, 1, n}
	case 2:
		return [3]int{1, n, n}
	default:
		return [3]int{n, n, n}
	}
}

// resumeView is the subset of flag values checked against checkpoint
// meta on resume.
type resumeView struct {
	cfgName    string
	tcus       int
	n          int
	dims       int
	radix      int
	simWorkers int

	watchdogWindow uint64

	faultSeed       uint64
	faultNoCDrop    float64
	faultNoCCorrupt float64
	faultDRAMBER    float64
	faultDRAMDBER   float64
	faultNoECC      bool
	faultKill       int
}

// checkResumeConflicts rejects explicitly-set flags that disagree with
// the checkpoint's meta. Unset flags adopt the meta silently; only a
// contradiction is an error, so `xmtfft -resume run.ckpt` just works
// while `xmtfft -resume run.ckpt -n 64` against a 32-point checkpoint
// fails loudly instead of simulating a different machine.
func checkResumeConflicts(meta ckpt.Meta, set map[string]bool, f resumeView) error {
	conflict := func(flagName string, got, want any) error {
		return &ckpt.MismatchError{Path: "-" + flagName, Reason: fmt.Sprintf(
			"flag value %v conflicts with the checkpoint's %v; drop the flag to adopt the checkpoint", got, want)}
	}
	if set["n"] && f.n != meta.Dims[2] {
		return conflict("n", f.n, meta.Dims[2])
	}
	if set["dims"] && f.dims != meta.DimCount {
		return conflict("dims", f.dims, meta.DimCount)
	}
	if set["radix"] && f.radix != meta.Radix {
		return conflict("radix", f.radix, meta.Radix)
	}
	if set["config"] || set["tcus"] {
		cfg, err := config.ByName(f.cfgName)
		if err != nil {
			return err
		}
		if f.tcus != 0 {
			if cfg, err = cfg.Scaled(f.tcus); err != nil {
				return err
			}
		}
		if cfg.Name != meta.Config.Name {
			return conflict("config/-tcus", cfg.Name, meta.Config.Name)
		}
	}
	if set["sim-workers"] && (f.simWorkers == 0) != (meta.Workers == 0) {
		return &ckpt.MismatchError{Path: "-sim-workers", Reason: fmt.Sprintf(
			"engine kind: checkpoint captured with %d workers, flag requests %d (0 = legacy serial; the two engines' cycle counts differ)",
			meta.Workers, f.simWorkers)}
	}
	if set["watchdog-window"] && f.watchdogWindow != meta.WatchdogWindow {
		return conflict("watchdog-window", f.watchdogWindow, meta.WatchdogWindow)
	}
	p := meta.Plan
	for _, c := range []struct {
		name string
		bad  bool
		got  any
		want any
	}{
		{"fault-seed", f.faultSeed != p.Seed, f.faultSeed, p.Seed},
		{"fault-noc-drop", f.faultNoCDrop != p.NoCDrop, f.faultNoCDrop, p.NoCDrop},
		{"fault-noc-corrupt", f.faultNoCCorrupt != p.NoCCorrupt, f.faultNoCCorrupt, p.NoCCorrupt},
		{"fault-dram-ber", f.faultDRAMBER != p.DRAMBitErr, f.faultDRAMBER, p.DRAMBitErr},
		{"fault-dram-dber", f.faultDRAMDBER != p.DRAMDoubleBitErr, f.faultDRAMDBER, p.DRAMDoubleBitErr},
		{"fault-no-ecc", f.faultNoECC != p.NoECC, f.faultNoECC, p.NoECC},
		{"fault-kill-clusters", f.faultKill != len(p.KillClusters), f.faultKill, len(p.KillClusters)},
	} {
		if set[c.name] && c.bad {
			return conflict(c.name, c.got, c.want)
		}
	}
	return nil
}
