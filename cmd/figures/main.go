// Command figures regenerates every figure artifact into a directory:
// the Fig. 3 roofline SVG, the strong-scaling chart, and a phase
// timeline from a detailed simulation.
//
// Usage:
//
//	figures -out figs/
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"xmtfft/internal/config"
	"xmtfft/internal/core"
	"xmtfft/internal/fft"
	"xmtfft/internal/stats"
	"xmtfft/internal/viz"
	"xmtfft/internal/xmt"
)

func main() {
	out := flag.String("out", "figures", "output directory")
	tcus := flag.Int("tcus", 512, "machine size for the detailed timeline run")
	n := flag.Int("n", 16, "cube size for the detailed timeline run")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, render func(f *os.File) error) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := render(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	write("fig3-roofline.svg", func(f *os.File) error { return viz.Fig3SVG(f) })
	write("strong-scaling.svg", func(f *os.File) error { return viz.ScalingSVG(f) })
	write("weak-scaling.svg", func(f *os.File) error { return viz.WeakScalingSVG(f) })

	// Detailed run for the timeline.
	cfg, err := config.FourK().Scaled(*tcus)
	if err != nil {
		fatal(err)
	}
	run, err := newMachineRun(cfg, *n)
	if err != nil {
		fatal(err)
	}
	write("phase-timeline.svg", func(f *os.File) error { return viz.TimelineSVG(f, run) })
}

func newMachineRun(cfg config.Config, n int) (run stats.Run, err error) {
	machine, err := xmt.New(cfg)
	if err != nil {
		return run, err
	}
	tr, err := core.New3D(machine, n, n, n)
	if err != nil {
		return run, err
	}
	rng := rand.New(rand.NewSource(1))
	for i := range tr.Data {
		tr.Data[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return tr.Run(fft.Forward)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
