// Command figures regenerates every figure artifact into a directory:
// the Fig. 3 roofline SVG, the strong-scaling chart, a phase timeline
// from a detailed simulation, and a utilization heat strip sampled from
// the same traced run.
//
// Usage:
//
//	figures -out figs/
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"

	"xmtfft/internal/config"
	"xmtfft/internal/core"
	"xmtfft/internal/fft"
	"xmtfft/internal/harness"
	"xmtfft/internal/stats"
	"xmtfft/internal/trace"
	"xmtfft/internal/viz"
	"xmtfft/internal/xmt"
)

func main() {
	out := flag.String("out", "figures", "output directory")
	tcus := flag.Int("tcus", 512, "machine size for the detailed timeline run")
	n := flag.Int("n", 16, "cube size for the detailed timeline run")
	traceEpoch := flag.Uint64("trace-epoch", 256, "utilization sampling interval in cycles for the heat strip")
	logLevel := flag.String("log-level", "info", "log verbosity on stderr: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
	flag.Parse()

	if *traceEpoch == 0 {
		fatal(fmt.Errorf("-trace-epoch must be positive"))
	}
	if _, err := harness.SetupLogger(*logLevel, *logJSON); err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, render func(w io.Writer) error) {
		path := filepath.Join(*out, name)
		if err := harness.WriteFileAtomic(path, render); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	write("fig3-roofline.svg", func(w io.Writer) error { return viz.Fig3SVG(w) })
	write("strong-scaling.svg", func(w io.Writer) error { return viz.ScalingSVG(w) })
	write("weak-scaling.svg", func(w io.Writer) error { return viz.WeakScalingSVG(w) })

	// Detailed run for the timeline.
	cfg, err := config.FourK().Scaled(*tcus)
	if err != nil {
		fatal(err)
	}
	run, rec, err := newMachineRun(cfg, *n, *traceEpoch)
	if err != nil {
		fatal(err)
	}
	write("phase-timeline.svg", func(w io.Writer) error { return viz.TimelineSVG(w, run) })
	write("utilization.svg", func(w io.Writer) error {
		return viz.UtilizationSVG(w, cfg.Name, rec.Epoch, rec.Samples)
	})
	write("trace.json", func(w io.Writer) error { return rec.WritePerfetto(w) })
}

func newMachineRun(cfg config.Config, n int, epoch uint64) (run stats.Run, rec *trace.Recorder, err error) {
	machine, err := xmt.New(cfg)
	if err != nil {
		return run, nil, err
	}
	rec = trace.NewRecorder(epoch)
	rec.Label = cfg.Name
	machine.AttachRecorder(rec)
	tr, err := core.New3D(machine, n, n, n)
	if err != nil {
		return run, nil, err
	}
	rng := rand.New(rand.NewSource(1))
	for i := range tr.Data {
		tr.Data[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	run, err = tr.Run(fft.Forward)
	return run, rec, err
}

func fatal(err error) {
	slog.Error("figures failed", "err", err)
	os.Exit(1)
}
