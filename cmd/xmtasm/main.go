// Command xmtasm assembles and runs an XMT assembly program on the
// simulated machine, demonstrating the spawn/join/ps programming model
// of §II-A at the instruction level.
//
// Usage:
//
//	xmtasm prog.s              # assemble + run
//	xmtasm -dis prog.s         # disassemble only
//	xmtasm -tcus 256 prog.s    # machine size
//
// With no file, a built-in demo (parallel array compaction using the
// prefix-sum primitive) is run.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmtfft/internal/config"
	"xmtfft/internal/isa"
	"xmtfft/internal/xmt"
)

// demo compacts the nonzero elements of an input array using ps — the
// canonical XMT idiom.
const demo = `
; parallel array compaction: b[0..count) = nonzero elements of a[0..n)
	li   r2, 512       ; n
	spawn r2, body
	gget r3, g0        ; r3 = number of nonzeros
	halt
body:
	slli r2, r1, 2     ; byte offset of a[i]
	lw   r3, r2, 0     ; a[i] stored at address 0
	beq  r3, r0, done
	li   r4, 1
	ps   r4, g0        ; r4 = old counter value (unique slot)
	slli r5, r4, 2
	sw   r3, r5, 4096  ; b at address 4096
done:
	join
`

func main() {
	tcus := flag.Int("tcus", 256, "machine size in TCUs (scaled 4k configuration)")
	dis := flag.Bool("dis", false, "disassemble and exit")
	profile := flag.Bool("profile", false, "print a per-instruction execution profile")
	memBytes := flag.Int("mem", 1<<20, "shared memory size in bytes")
	flag.Parse()

	src := demo
	usingDemo := true
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
		usingDemo = false
	}

	prog, err := isa.Assemble(src)
	if err != nil {
		fatal(err)
	}
	if *dis {
		fmt.Print(prog.Disassemble())
		return
	}

	cfg, err := config.FourK().Scaled(*tcus)
	if err != nil {
		fatal(err)
	}
	m, err := xmt.New(cfg)
	if err != nil {
		fatal(err)
	}
	vm := isa.NewVM(m, prog, *memBytes)
	var prof *isa.Profile
	if *profile {
		prof = isa.NewProfile(prog)
		vm.Tracer = prof
	}

	if usingDemo {
		// Seed the demo input: every third element nonzero.
		for i := 0; i < 512; i++ {
			if i%3 == 0 {
				vm.StoreWord(i*4, int32(i+1))
			}
		}
	}

	cycles, err := vm.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("machine: %s\n", cfg)
	fmt.Printf("cycles: %d (%d serial + %d thread instructions)\n", cycles, vm.SerialInstrs, vm.ThreadInstrs)
	fmt.Printf("globals: %v\n", vm.Globals)
	if prof != nil {
		fmt.Print(prof.String())
	}
	fmt.Printf("int registers: %v\n", vm.IntRegs[:16])
	if usingDemo {
		count := vm.Globals[0]
		fmt.Printf("demo: compacted %d nonzero elements; first few outputs:", count)
		for i := 0; i < 8 && int64(i) < count; i++ {
			fmt.Printf(" %d", vm.LoadWord(4096+i*4))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtasm:", err)
	os.Exit(1)
}
