// Command genkernel generates the straight-line DFT codelet kernels in
// internal/fft/codelet: for each covered size it emits a fully unrolled
// Stockham decimation-in-frequency pass sequence with every twiddle
// factor folded into the instruction stream as a literal constant —
// the genfft/FFTW "codelet" technique. Constant folding happens here,
// at generation time: multiplications by 1 and -1 disappear, ±i becomes
// a real/imaginary swap, and every remaining twiddle is a compile-time
// complex literal, so the kernels run branch-free with zero twiddle-table
// loads and zero bounds checks (the leading re-slices pin the lengths).
//
// The pass decomposition is exactly fft.Radices (radix 8 while
// possible). When the pass count is odd the final pass runs in place:
// its sub-transforms have length equal to the radix, so each butterfly
// reads and writes the same index set and needs no second buffer —
// the ping-pong still ends with the result in x and no copy is emitted.
//
// Two emission shapes keep the kernels inside the instruction cache:
// the j dimension (distinct twiddles) is always fully unrolled, while
// the d dimension (identical butterflies at shifted offsets) becomes a
// constant-trip-count loop once it is wide enough to be worth one.
//
// Kernels are emitted per element type (complex64 and complex128) and
// per direction; the inverse kernels are the forward ones with every
// twiddle conjugated. Twiddle values are computed exactly as the
// runtime table builder computes them (math.Sincos of the same float64
// angle, then rounded to the element type), so a codelet pass and the
// generic pass it replaces agree to the last rounding of each shared
// operation.
//
// Usage (normally via go:generate in internal/fft/codelet):
//
//	genkernel -out internal/fft/codelet [-sizes 8,16,...,1024]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genkernel: ")
	out := flag.String("out", "internal/fft/codelet", "output directory (the codelet package)")
	sizesFlag := flag.String("sizes", "8,16,32,64,128,256,512,1024", "comma-separated power-of-two kernel sizes, each >= 8")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range sizes {
		for _, ct := range []ctype{c64, c128} {
			name := fmt.Sprintf("z_dft%04d_%s.go", n, ct.tag)
			writeFile(filepath.Join(*out, name), genSizeFile(n, ct))
		}
	}
	writeFile(filepath.Join(*out, "z_registry.go"), genRegistry(sizes))
}

// parseSizes validates the size list: powers of two, >= 8, ascending.
func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("invalid size %q: %v", f, err)
		}
		if n < 8 || n&(n-1) != 0 {
			return nil, fmt.Errorf("size %d is not a power of two >= 8", n)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	sort.Ints(sizes)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] == sizes[i-1] {
			return nil, fmt.Errorf("duplicate size %d", sizes[i])
		}
	}
	return sizes, nil
}

// writeFile gofmt-formats src and writes it.
func writeFile(path string, src []byte) {
	formatted, err := format.Source(src)
	if err != nil {
		// Dump the unformatted source to ease debugging generator bugs.
		_ = os.WriteFile(path+".bad", src, 0o644)
		log.Fatalf("%s: generated source does not parse: %v", path, err)
	}
	if err := os.WriteFile(path, formatted, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path, "-", len(formatted), "bytes")
}

// ctype is an element type the kernels are emitted for.
type ctype struct {
	name string // Go type name
	tag  string // file/function suffix
	bits int    // mantissa rounding target for constants (32 or 64)
}

var (
	c64  = ctype{name: "complex64", tag: "c64", bits: 32}
	c128 = ctype{name: "complex128", tag: "c128", bits: 64}
)

// passRadices decomposes a power-of-two n >= 8 into Stockham pass
// radices with the fft.Radices greedy rule: radix 8 while possible,
// then a final 4 or 2.
func passRadices(n int) []int {
	e := 0
	for v := n; v > 1; v >>= 1 {
		e++
	}
	var rs []int
	for rem := e; rem > 0; {
		switch {
		case rem >= 3:
			rs = append(rs, 8)
			rem -= 3
		case rem == 2:
			rs = append(rs, 4)
			rem -= 2
		default:
			rs = append(rs, 2)
			rem--
		}
	}
	return rs
}

// dLoopMin is the d-dimension width from which the generator emits a
// constant-trip-count loop instead of unrolling: the butterflies of one
// j share their twiddles, so looping d loses no constant folding and
// keeps large kernels inside the instruction cache.
const dLoopMin = 8

// gen accumulates generated source.
type gen struct {
	buf bytes.Buffer
}

func (g *gen) pf(format string, args ...any) {
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func header(g *gen) {
	g.pf("// Code generated by cmd/genkernel. DO NOT EDIT.")
	g.pf("")
	g.pf("package codelet")
	g.pf("")
}

// genSizeFile emits the forward and inverse kernels for one size and
// element type.
func genSizeFile(n int, ct ctype) []byte {
	g := &gen{}
	header(g)
	rs := passRadices(n)
	g.pf("// %d-point straight-line kernels (%s), pass radices %v.", n, ct.name, rs)
	genKernel(g, fmt.Sprintf("fwd%d%s", n, ct.tag), n, -1, ct)
	genKernel(g, fmt.Sprintf("inv%d%s", n, ct.tag), n, +1, ct)
	return g.buf.Bytes()
}

// genKernel emits one unrolled kernel: the in-place DFT of x (length n,
// natural order in and out), using s as ping-pong scratch. With an odd
// pass count the final pass (sub-transform length == radix, so reads
// and writes cover the same indices) runs in place, keeping the result
// in x either way.
func genKernel(g *gen, name string, n, dir int, ct ctype) {
	word := "forward"
	if dir > 0 {
		word = "inverse"
	}
	rs := passRadices(n)
	g.pf("")
	g.pf("// %s computes the unnormalized %s %d-point DFT of x in place;", name, word, n)
	g.pf("// s is scratch. Both must have at least %d elements.", n)
	g.pf("func %s(x, s []%s) {", name, ct.name)
	g.pf("x = x[:%d:%d]", n, n)
	if len(rs) > 1 {
		g.pf("s = s[:%d:%d]", n, n)
	} else {
		g.pf("_ = s")
	}
	src, dst := "x", "s"
	stride, l := 1, n
	for i, r := range rs {
		if i == len(rs)-1 && len(rs)%2 == 1 {
			// Odd pass count: the final l==r pass runs in place on x.
			if src != "x" || l != r {
				log.Fatalf("%s: in-place final pass needs src=x and l==r, got src=%s l=%d r=%d", name, src, l, r)
			}
			dst = src
		}
		emitPass(g, src, dst, stride, l, r, dir, ct)
		src, dst = dst, src
		stride *= r
		l /= r
	}
	if src != "x" {
		log.Fatalf("%s: result ended in scratch", name)
	}
	g.pf("}")
}

// emitPass unrolls one Stockham DIF pass of radix r at state (stride, l).
// The in-transform index j (distinct twiddles) is fully unrolled; the
// digit prefix d (identical butterflies at shifted offsets) becomes a
// loop once stride reaches dLoopMin. When src == dst the pass is
// emitted in place (valid only for l == r, where each butterfly's read
// and write index sets coincide).
func emitPass(g *gen, src, dst string, stride, l, r, dir int, ct ctype) {
	lr := l / r
	inPlace := ""
	if src == dst {
		inPlace = " (in place)"
	}
	g.pf("// pass: radix %d, l=%d, stride=%d%s", r, l, stride, inPlace)
	for j := 0; j < lr; j++ {
		emit := func(in, out func(int) string) {
			switch r {
			case 2:
				emitRadix2(g, src, dst, in, out, j, l, dir, ct)
			case 4:
				emitRadix4(g, src, dst, in, out, j, l, dir, ct)
			case 8:
				emitRadix8(g, src, dst, in, out, j, l, dir, ct)
			default:
				log.Fatalf("unsupported radix %d", r)
			}
		}
		if stride >= dLoopMin {
			g.pf("for d := 0; d < %d; d++ {", stride)
			emit(
				func(k int) string { return fmt.Sprintf("d+%d", stride*(j+k*lr)) },
				func(m int) string { return fmt.Sprintf("d+%d", stride*(r*j+m)) },
			)
			g.pf("}")
			continue
		}
		for d := 0; d < stride; d++ {
			emit(
				func(k int) string { return strconv.Itoa(d + stride*(j+k*lr)) },
				func(m int) string { return strconv.Itoa(d + stride*(r*j+m)) },
			)
		}
	}
}

func emitRadix2(g *gen, src, dst string, in, out func(int) string, j, l, dir int, ct ctype) {
	g.pf("{")
	g.pf("a := %s[%s]", src, in(0))
	g.pf("b := %s[%s]", src, in(1))
	g.pf("%s[%s] = a + b", dst, out(0))
	emitStoreMul(g, dst, out(1), "a - b", j, l, dir, ct)
	g.pf("}")
}

func emitRadix4(g *gen, src, dst string, in, out func(int) string, j, l, dir int, ct ctype) {
	g.pf("{")
	for k := 0; k < 4; k++ {
		g.pf("t%d := %s[%s]", k, src, in(k))
	}
	g.pf("a := t0 + t2")
	g.pf("b := t0 - t2")
	g.pf("c := t1 + t3")
	g.pf("u := t1 - t3")
	g.pf("e := %s", mulIExpr("u", dir))
	g.pf("%s[%s] = a + c", dst, out(0))
	emitStoreMul(g, dst, out(1), "b + e", j, l, dir, ct)
	emitStoreMul(g, dst, out(2), "a - c", 2*j, l, dir, ct)
	emitStoreMul(g, dst, out(3), "b - e", 3*j, l, dir, ct)
	g.pf("}")
}

func emitRadix8(g *gen, src, dst string, in, out func(int) string, j, l, dir int, ct ctype) {
	h := math.Sqrt2 / 2
	w8 := fmtComplex(h, float64(dir)*h, ct)   // ω_8^{dir}
	w83 := fmtComplex(-h, float64(dir)*h, ct) // i·dir · ω_8^{dir} = ω_8^{3·dir}
	g.pf("{")
	for k := 0; k < 8; k++ {
		g.pf("t%d := %s[%s]", k, src, in(k))
	}
	// E = DFT4(t0,t2,t4,t6), O = DFT4(t1,t3,t5,t7), as in the generic pass.
	g.pf("a0 := t0 + t4")
	g.pf("b0 := t0 - t4")
	g.pf("c0 := t2 + t6")
	g.pf("u0 := t2 - t6")
	g.pf("p0 := %s", mulIExpr("u0", dir))
	g.pf("e0 := a0 + c0")
	g.pf("e1 := b0 + p0")
	g.pf("e2 := a0 - c0")
	g.pf("e3 := b0 - p0")
	g.pf("a1 := t1 + t5")
	g.pf("b1 := t1 - t5")
	g.pf("c1 := t3 + t7")
	g.pf("u1 := t3 - t7")
	g.pf("p1 := %s", mulIExpr("u1", dir))
	g.pf("o0 := a1 + c1")
	g.pf("o1 := (b1 + p1) * %s", w8)
	g.pf("q := a1 - c1")
	g.pf("o2 := %s", mulIExpr("q", dir))
	g.pf("o3 := (b1 - p1) * %s", w83)
	for m := 0; m < 4; m++ {
		g.pf("y%d := e%d + o%d", m, m, m)
		g.pf("y%d := e%d - o%d", m+4, m, m)
	}
	for m := 0; m < 8; m++ {
		emitStoreMul(g, dst, out(m), fmt.Sprintf("y%d", m), m*j, l, dir, ct)
	}
	g.pf("}")
}

// mulIExpr returns the expression for v·(dir·i): the strength-reduced
// multiplication by ±i.
func mulIExpr(v string, dir int) string {
	if dir < 0 { // ·(-i): (re+im·i)(-i) = im - re·i
		return fmt.Sprintf("complex(imag(%s), -real(%s))", v, v)
	}
	return fmt.Sprintf("complex(-imag(%s), real(%s))", v, v)
}

// emitStoreMul emits dst[idx] = (expr) · ω_l^{dir·e}, folding trivial
// twiddles: 1 disappears, -1 negates, ±i swaps, everything else is a
// literal complex constant.
func emitStoreMul(g *gen, dst, idx, expr string, e, l, dir int, ct ctype) {
	switch {
	case e == 0:
		g.pf("%s[%s] = %s", dst, idx, expr)
	case 2*e == l:
		g.pf("%s[%s] = -(%s)", dst, idx, expr)
	case 4*e == l || 4*e == 3*l:
		// angle dir·π/2 (or dir·3π/2): ±i depending on direction.
		mdir := dir
		if 4*e == 3*l {
			mdir = -dir
		}
		g.pf("{")
		g.pf("v := %s", expr)
		g.pf("%s[%s] = %s", dst, idx, mulIExpr("v", mdir))
		g.pf("}")
	default:
		s, c := math.Sincos(float64(dir) * 2 * math.Pi * float64(e) / float64(l))
		g.pf("%s[%s] = (%s) * %s", dst, idx, expr, fmtComplex(c, s, ct))
	}
}

// fmtComplex renders a complex constant rounded to the element type, so
// the literal equals what the runtime table builder would store.
func fmtComplex(re, im float64, ct ctype) string {
	return fmt.Sprintf("complex(%s, %s)", fmtFloat(re, ct), fmtFloat(im, ct))
}

func fmtFloat(v float64, ct ctype) string {
	if ct.bits == 32 {
		return strconv.FormatFloat(float64(float32(v)), 'g', -1, 32)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// genRegistry emits the lookup tables the fft planner dispatches
// through, plus the coverage helpers.
func genRegistry(sizes []int) []byte {
	g := &gen{}
	header(g)
	g.pf("// Registry of generated kernels. Kernel64/Kernel128 return nil for")
	g.pf("// sizes without a generated kernel.")
	g.pf("")
	g.pf("// MinN and MaxN bound the covered kernel sizes.")
	g.pf("const (")
	g.pf("MinN = %d", sizes[0])
	g.pf("MaxN = %d", sizes[len(sizes)-1])
	g.pf(")")
	g.pf("")
	g.pf("// Covered reports whether a generated kernel exists for n.")
	g.pf("func Covered(n int) bool {")
	g.pf("switch n {")
	g.pf("case %s:", joinInts(sizes))
	g.pf("return true")
	g.pf("}")
	g.pf("return false")
	g.pf("}")
	g.pf("")
	g.pf("// Sizes returns the covered sizes in ascending order.")
	g.pf("func Sizes() []int {")
	g.pf("return []int{%s}", joinInts(sizes))
	g.pf("}")
	for _, ct := range []ctype{c64, c128} {
		fn := "Kernel64"
		if ct.bits == 64 {
			fn = "Kernel128"
		}
		g.pf("")
		g.pf("// %s returns the %s kernel for n, or nil if n is uncovered.", fn, ct.name)
		g.pf("// The returned kernel computes the unnormalized n-point DFT of x in")
		g.pf("// place using s as scratch; both slices need at least n elements.")
		g.pf("func %s(n int, inverse bool) func(x, s []%s) {", fn, ct.name)
		g.pf("switch n {")
		for _, n := range sizes {
			g.pf("case %d:", n)
			g.pf("if inverse {")
			g.pf("return inv%d%s", n, ct.tag)
			g.pf("}")
			g.pf("return fwd%d%s", n, ct.tag)
		}
		g.pf("}")
		g.pf("return nil")
		g.pf("}")
	}
	return g.buf.Bytes()
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ", ")
}
