// Command xmtserve is the FFT-as-a-service front end: an HTTP server
// that executes 1D/2D/3D transform requests (complex64/complex128,
// forward/inverse, optionally batched) from the concurrency-safe plan
// cache, coalescing concurrent same-size 1D requests into single batch
// passes, with admission control (429 + Retry-After past the in-flight
// budget) and graceful drain on SIGTERM/SIGINT. Live observability —
// /metrics (OpenMetrics), /progress, /debug/pprof/* — rides on the same
// port via the harness observability surface.
//
// Usage:
//
//	xmtserve                              # serve on :8123
//	xmtserve -addr :9000 -max-inflight 64 -coalesce-wait 500us
//	xmtserve -selftest -bench-out BENCH_serve.json
//	xmtserve -load http://host:8123 -load-concurrency 16 -bench-requests 500
//
// POST /v1/transform with a JSON document like
//
//	{"dims":[1024],"dtype":"complex64","dir":"forward","data":[re,im,...]}
//
// answers with the transformed samples; see internal/serve for the
// full wire contract (norm, batch layouts, error shapes).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmtfft/internal/harness"
	"xmtfft/internal/serve"
	"xmtfft/internal/serve/loadgen"
)

func main() {
	addr := flag.String("addr", ":8123", "listen address for serve mode")
	maxInflight := flag.Int("max-inflight", 256, "admitted-but-unfinished request budget; arrivals beyond it get 429 + Retry-After")
	maxBatch := flag.Int("max-batch", 32, "coalescing cap: requests one 1D plan pass may carry")
	coalesceWait := flag.Duration("coalesce-wait", 0, "how long a pool holds a short batch open for stragglers (0 = coalesce only queued work)")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint on 429/503 responses (rounded up to whole seconds)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-drain budget after SIGTERM before in-flight requests are abandoned")
	maxBody := flag.Int64("max-body", 1<<28, "request body size limit in bytes")

	selftest := flag.Bool("selftest", false, "run the in-process load-tested contract: serve on a loopback port, drive the load generator at -bench-concurrency levels, print the results")
	benchOut := flag.String("bench-out", "", "with -selftest: write the BENCH_serve.json record to this path ('-' for stdout)")
	benchN := flag.Int("bench-n", 1024, "with -selftest/-load: 1D transform size")
	benchDtype := flag.String("bench-dtype", "complex64", "with -selftest/-load: element type (complex64 or complex128)")
	benchRequests := flag.Int("bench-requests", 400, "with -selftest/-load: requests per concurrency level")
	benchConc := flag.String("bench-concurrency", "1,4,16", "with -selftest: comma-separated concurrency levels")

	loadURL := flag.String("load", "", "client mode: drive a running server at this base URL with the load generator and print the measurement")
	loadConc := flag.Int("load-concurrency", 8, "with -load: worker goroutines")

	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "log JSON lines instead of text")
	flag.Parse()

	if _, err := harness.SetupLogger(*logLevel, *logJSON); err != nil {
		usageError(err)
	}
	f := cliFlags{
		maxInflight: *maxInflight, maxBatch: *maxBatch,
		coalesceWait: *coalesceWait, retryAfter: *retryAfter,
		drainTimeout: *drainTimeout, maxBody: *maxBody,
		selftest: *selftest, benchOut: *benchOut, benchN: *benchN,
		benchDtype: *benchDtype, benchRequests: *benchRequests,
		benchConc: *benchConc, loadURL: *loadURL, loadConc: *loadConc,
	}
	if err := validateFlags(f); err != nil {
		usageError(err)
	}

	switch {
	case *selftest:
		if err := runSelftest(f); err != nil {
			fatal(err)
		}
	case *loadURL != "":
		if err := runLoad(f); err != nil {
			fatal(err)
		}
	default:
		if err := runServe(*addr, f); err != nil {
			fatal(err)
		}
	}
}

// runServe is the long-running server mode: transform routes plus the
// observability surface on one port, drained gracefully on SIGTERM.
func runServe(addr string, f cliFlags) error {
	obs := harness.NewObs()
	srv := serve.New(serve.Config{
		MaxInflight:  f.maxInflight,
		MaxBatch:     f.maxBatch,
		CoalesceWait: f.coalesceWait,
		MaxBodyBytes: f.maxBody,
		RetryAfter:   f.retryAfter,
		Registry:     obs.Registry,
		Fallback:     obs.Handler(),
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	slog.Info("xmtserve listening", "addr", ln.Addr().String(),
		"max_inflight", f.maxInflight, "max_batch", f.maxBatch,
		"coalesce_wait", f.coalesceWait.String())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	slog.Info("draining", "timeout", f.drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), f.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		hs.Close()
		return err
	}
	if err := hs.Shutdown(dctx); err != nil {
		return err
	}
	slog.Info("drained, bye")
	return nil
}

// runSelftest is the load-tested contract in one command: in-process
// server, loadgen at each concurrency level, human summary on stdout
// and optionally the BENCH_serve.json record.
func runSelftest(f cliFlags) error {
	conc, err := parseIntList("-bench-concurrency", f.benchConc)
	if err != nil {
		return err
	}
	rec, err := harness.RunServeBench(harness.ServeBenchOptions{
		N:            f.benchN,
		Dtype:        f.benchDtype,
		Requests:     f.benchRequests,
		Concurrency:  conc,
		MaxInflight:  f.maxInflight,
		MaxBatch:     f.maxBatch,
		CoalesceWait: f.coalesceWait,
	})
	if err != nil {
		return err
	}
	fmt.Printf("serve selftest: n=%d dtype=%s requests/level=%d\n", rec.N, rec.Dtype, rec.Requests)
	fmt.Printf("%12s %10s %10s %10s %12s %10s %10s\n",
		"concurrency", "p50 ms", "p99 ms", "max ms", "req/s", "passes", "coalesce")
	for _, l := range rec.Levels {
		fmt.Printf("%12d %10.3f %10.3f %10.3f %12.1f %10d %9.1f%%\n",
			l.Concurrency, l.P50Ms, l.P99Ms, l.MaxMs, l.Throughput, l.PlanPasses, 100*l.CoalesceRate)
	}
	if f.benchOut == "" {
		return nil
	}
	return writeRecord(f.benchOut, rec.Write)
}

// runLoad drives an external server.
func runLoad(f cliFlags) error {
	res, err := loadgen.Run(loadgen.Options{
		BaseURL:     f.loadURL,
		Concurrency: f.loadConc,
		Requests:    f.benchRequests,
		N:           f.benchN,
		Dtype:       f.benchDtype,
	})
	if err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("load run: %d/%d requests failed", res.Errors, res.Requests)
	}
	fmt.Printf("load %s: concurrency=%d requests=%d\n", f.loadURL, res.Concurrency, res.Requests)
	fmt.Printf("p50 %.3f ms  p90 %.3f ms  p99 %.3f ms  max %.3f ms\n", res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs)
	fmt.Printf("throughput %.1f req/s, %d plan passes, coalesce rate %.1f%%, %d rejections retried\n",
		res.Throughput, res.PlanPasses, 100*res.CoalesceRate, res.Rejected429)
	return nil
}

// writeRecord emits a benchmark record to stdout ("-") or atomically to
// a file, so an interrupted run never truncates a previous artifact.
func writeRecord(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	if err := harness.WriteFileAtomic(path, write); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// fatal reports a runtime failure through the structured logger and
// exits with status 1.
func fatal(err error) {
	slog.Error("xmtserve failed", "err", err)
	os.Exit(1)
}

// usageError reports an invalid flag combination and exits with the
// conventional usage-error status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "xmtserve:", err)
	fmt.Fprintln(os.Stderr, "run with -h for flag documentation")
	os.Exit(2)
}
