package main

// Flag validation, separated from main so it is a pure function over
// the parsed values and unit-testable. Violations are user errors:
// main reports them on stderr and exits with status 2, distinct from
// the status-1 runtime failures in fatal.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"xmtfft/internal/fft"
	"xmtfft/internal/serve"
)

// cliFlags is the subset of xmtserve's flags that can be invalid in
// ways flag parsing itself does not catch.
type cliFlags struct {
	maxInflight  int
	maxBatch     int
	coalesceWait time.Duration
	retryAfter   time.Duration
	drainTimeout time.Duration
	maxBody      int64

	selftest      bool
	benchOut      string
	benchN        int
	benchDtype    string
	benchRequests int
	benchConc     string

	loadURL  string
	loadConc int
}

// parseIntList parses a comma-separated integer list flag.
func parseIntList(flagName, list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// validateFlags returns the first violation with an actionable message,
// or nil when the combination is runnable.
func validateFlags(f cliFlags) error {
	if f.maxInflight < 1 {
		return fmt.Errorf("-max-inflight must be >= 1, got %d", f.maxInflight)
	}
	if f.maxBatch < 1 {
		return fmt.Errorf("-max-batch must be >= 1, got %d", f.maxBatch)
	}
	if f.coalesceWait < 0 {
		return fmt.Errorf("-coalesce-wait must be >= 0, got %v", f.coalesceWait)
	}
	if f.retryAfter <= 0 {
		return fmt.Errorf("-retry-after must be positive, got %v", f.retryAfter)
	}
	if f.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", f.drainTimeout)
	}
	if f.maxBody < 1 {
		return fmt.Errorf("-max-body must be >= 1, got %d", f.maxBody)
	}
	if f.selftest && f.loadURL != "" {
		return fmt.Errorf("-selftest and -load are exclusive modes")
	}
	if f.benchOut != "" && !f.selftest {
		return fmt.Errorf("-bench-out requires -selftest")
	}
	if f.selftest || f.loadURL != "" {
		if !fft.IsPowerOfTwo(f.benchN) {
			return fmt.Errorf("-bench-n must be a power of two, got %d", f.benchN)
		}
		if f.benchN > serve.MaxElems {
			return fmt.Errorf("-bench-n must be <= %d, got %d", serve.MaxElems, f.benchN)
		}
		if f.benchDtype != "complex64" && f.benchDtype != "complex128" {
			return fmt.Errorf("-bench-dtype must be complex64 or complex128, got %q", f.benchDtype)
		}
		if f.benchRequests < 1 {
			return fmt.Errorf("-bench-requests must be >= 1, got %d", f.benchRequests)
		}
	}
	if f.selftest {
		conc, err := parseIntList("-bench-concurrency", f.benchConc)
		if err != nil {
			return err
		}
		for _, c := range conc {
			if c < 1 {
				return fmt.Errorf("-bench-concurrency entries must be >= 1, got %d", c)
			}
		}
	}
	if f.loadURL != "" {
		if !strings.HasPrefix(f.loadURL, "http://") && !strings.HasPrefix(f.loadURL, "https://") {
			return fmt.Errorf("-load must be an http(s) base URL, got %q", f.loadURL)
		}
		if f.loadConc < 1 {
			return fmt.Errorf("-load-concurrency must be >= 1, got %d", f.loadConc)
		}
	}
	return nil
}
