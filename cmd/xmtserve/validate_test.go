package main

import (
	"strings"
	"testing"
	"time"
)

// okFlags returns a runnable baseline flag set; tests mutate one field.
func okFlags() cliFlags {
	return cliFlags{
		maxInflight:   256,
		maxBatch:      32,
		coalesceWait:  200 * time.Microsecond,
		retryAfter:    time.Second,
		drainTimeout:  15 * time.Second,
		maxBody:       1 << 28,
		benchN:        1024,
		benchDtype:    "complex64",
		benchRequests: 400,
		benchConc:     "1,4,16",
		loadConc:      8,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string // empty = valid
	}{
		{"baseline serve", func(f *cliFlags) {}, ""},
		{"selftest ok", func(f *cliFlags) { f.selftest = true }, ""},
		{"load ok", func(f *cliFlags) { f.loadURL = "http://127.0.0.1:8123" }, ""},
		{"zero max-inflight", func(f *cliFlags) { f.maxInflight = 0 }, "-max-inflight"},
		{"zero max-batch", func(f *cliFlags) { f.maxBatch = 0 }, "-max-batch"},
		{"negative coalesce-wait", func(f *cliFlags) { f.coalesceWait = -time.Millisecond }, "-coalesce-wait"},
		{"zero retry-after", func(f *cliFlags) { f.retryAfter = 0 }, "-retry-after"},
		{"zero drain-timeout", func(f *cliFlags) { f.drainTimeout = 0 }, "-drain-timeout"},
		{"zero max-body", func(f *cliFlags) { f.maxBody = 0 }, "-max-body"},
		{"selftest and load exclusive", func(f *cliFlags) { f.selftest = true; f.loadURL = "http://x" }, "exclusive"},
		{"bench-out without selftest", func(f *cliFlags) { f.benchOut = "BENCH_serve.json" }, "requires -selftest"},
		{"bench-out with selftest", func(f *cliFlags) { f.selftest = true; f.benchOut = "-" }, ""},
		{"non-pow2 bench-n", func(f *cliFlags) { f.selftest = true; f.benchN = 1000 }, "power of two"},
		{"bench-n ignored when serving", func(f *cliFlags) { f.benchN = 1000 }, ""},
		{"bad bench-dtype", func(f *cliFlags) { f.selftest = true; f.benchDtype = "float32" }, "-bench-dtype"},
		{"zero bench-requests", func(f *cliFlags) { f.selftest = true; f.benchRequests = 0 }, "-bench-requests"},
		{"bad concurrency entry", func(f *cliFlags) { f.selftest = true; f.benchConc = "1,x" }, "-bench-concurrency"},
		{"zero concurrency entry", func(f *cliFlags) { f.selftest = true; f.benchConc = "1,0" }, ">= 1"},
		{"concurrency ignored when serving", func(f *cliFlags) { f.benchConc = "garbage" }, ""},
		{"load without scheme", func(f *cliFlags) { f.loadURL = "127.0.0.1:8123" }, "http(s)"},
		{"zero load-concurrency", func(f *cliFlags) { f.loadURL = "http://x"; f.loadConc = 0 }, "-load-concurrency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := okFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("-x", " 1, 4,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("parseIntList = %v", got)
	}
	if _, err := parseIntList("-x", "1,,3"); err == nil {
		t.Fatal("empty entry accepted")
	}
}
