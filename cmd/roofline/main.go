// Command roofline regenerates Fig. 3: the Roofline model of each XMT
// configuration with the empirical rotation / non-rotation / overall
// markers for the 512³ 3D FFT.
//
// Usage:
//
//	roofline              # human-readable
//	roofline -csv         # CSV series for plotting
//	roofline -svg fig3.svg    # render the figure as SVG
//	roofline -scaling s.svg   # render the strong-scaling chart
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmtfft/internal/harness"
	"xmtfft/internal/viz"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of text")
	svg := flag.String("svg", "", "write Fig. 3 as SVG to this path")
	scaling := flag.String("scaling", "", "write the strong-scaling chart as SVG to this path")
	flag.Parse()

	writeSVG := func(path string, render func(w io.Writer) error) {
		if err := harness.WriteFileAtomic(path, render); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	if *svg != "" {
		writeSVG(*svg, func(w io.Writer) error { return viz.Fig3SVG(w) })
		return
	}
	if *scaling != "" {
		writeSVG(*scaling, func(w io.Writer) error { return viz.ScalingSVG(w) })
		return
	}

	var err error
	if *csv {
		err = harness.Fig3CSV(os.Stdout)
	} else {
		err = harness.Fig3(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roofline:", err)
	os.Exit(1)
}
