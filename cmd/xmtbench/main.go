// Command xmtbench runs the design-choice ablations of §IV-A on the
// detailed simulator and prints them as one table: radix (2/4/8),
// granularity (fine vs coarse), and the prefetcher enhancement.
//
// With -trace (and/or -util-svg) the baseline variant additionally
// records a cycle-level trace, exported in Chrome trace-event JSON /
// as a utilization heat strip.
//
// With -host-bench the simulator ablations are skipped and the host
// FFT (the FFTW-substitute baseline) is measured instead: the
// cache-blocked fused transform rounds against the naive unblocked
// rounds, serial and parallel, written as a BENCH_fft.json perf record.
//
// With -sim-bench the simulator itself is measured: the same FFT
// workload runs on the legacy serial engine and on the sharded parallel
// engine at several -sim-bench-workers counts, and the wall-clock
// results are written as a BENCH_sim.json perf record.
//
// Usage:
//
//	xmtbench                  # defaults: 4k scaled to 1024 TCUs, 32^3
//	xmtbench -tcus 512 -n 16  # small size (the CI smoke path)
//	xmtbench -sim-workers 4   # ablations on the sharded engine
//	xmtbench -trace /tmp/bench.json -util-svg /tmp/bench.svg
//	xmtbench -host-bench BENCH_fft.json -host-n 128,256
//	xmtbench -sim-bench BENCH_sim.json -sim-bench-workers 1,2,4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"xmtfft/internal/baseline"
	"xmtfft/internal/harness"
	"xmtfft/internal/viz"
)

func main() {
	tcus := flag.Int("tcus", 1024, "machine size in TCUs (scaled 4k configuration)")
	n := flag.Int("n", 32, "points per dimension (power of two)")
	simWorkers := flag.Int("sim-workers", 0, "simulation worker count: 0 = legacy serial engine, >= 1 = sharded parallel engine")
	simBench := flag.String("sim-bench", "", "measure the simulator (legacy vs sharded engine) on the FFT workload and write a BENCH_sim.json perf record to this path ('-' for stdout)")
	simBenchWorkers := flag.String("sim-bench-workers", "1,2,4", "comma-separated sharded worker counts for -sim-bench")
	simReps := flag.Int("sim-reps", 3, "repetitions per -sim-bench point (best run kept)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON trace of the baseline variant to this path")
	traceEpoch := flag.Uint64("trace-epoch", 256, "utilization sampling interval in cycles for -trace / -util-svg")
	utilSVG := flag.String("util-svg", "", "write an epoch-utilization heat-strip SVG of the baseline variant to this path")
	hostBench := flag.String("host-bench", "", "measure the host FFT (blocked vs naive fused rounds) and write a BENCH_fft.json perf record to this path ('-' for stdout)")
	hostSizes := flag.String("host-n", "128,256", "comma-separated per-dimension sizes for -host-bench")
	hostWorkers := flag.Int("host-workers", 0, "parallel worker count for -host-bench (0 = GOMAXPROCS)")
	hostReps := flag.Int("host-reps", 1, "repetitions per -host-bench point (best run kept)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", *memProfile)
		}()
	}

	if *hostBench != "" {
		if err := runHostBench(*hostBench, *hostSizes, *hostWorkers, *hostReps); err != nil {
			fatal(err)
		}
		return
	}
	if *simBench != "" {
		if err := runSimBench(*simBench, *simBenchWorkers, *tcus, *n, *simReps); err != nil {
			fatal(err)
		}
		return
	}

	epoch := uint64(0)
	if *tracePath != "" || *utilSVG != "" {
		if *traceEpoch == 0 {
			fatal(fmt.Errorf("-trace-epoch must be positive"))
		}
		epoch = *traceEpoch
	}
	rec, err := harness.AblationReportTraceWorkers(os.Stdout, *tcus, *n, epoch, *simWorkers)
	if err != nil {
		fatal(err)
	}
	if rec == nil {
		return
	}
	writeFile := func(path string, f func(*os.File) error) {
		if path == "" {
			return
		}
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		if err := f(fh); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	writeFile(*tracePath, func(f *os.File) error { return rec.WritePerfetto(f) })
	writeFile(*utilSVG, func(f *os.File) error {
		return viz.UtilizationSVG(f, rec.Label, rec.Epoch, rec.Samples)
	})
}

// runHostBench measures the host FFT and writes the perf record.
func runHostBench(path, sizeList string, workers, reps int) error {
	var sizes []int
	for _, s := range strings.Split(sizeList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -host-n entry %q: %w", s, err)
		}
		sizes = append(sizes, v)
	}
	rec, err := baseline.RunHostBench(sizes, workers, reps)
	if err != nil {
		return err
	}
	for _, r := range rec.Results {
		fmt.Printf("%-36s %12v  %7.3f GFLOPS\n", r.Label, r.Elapsed, r.GFLOPS)
	}
	for _, n := range sizes {
		if sp := rec.BlockedSpeedup(n, 1); sp > 0 {
			fmt.Printf("%d^3 serial blocked/naive speedup: %.2fx\n", n, sp)
		}
	}
	if path == "-" {
		return rec.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.Write(f); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// runSimBench measures the simulation engines and writes BENCH_sim.json.
func runSimBench(path, workerList string, tcus, n, reps int) error {
	var workers []int
	for _, s := range strings.Split(workerList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -sim-bench-workers entry %q: %w", s, err)
		}
		workers = append(workers, v)
	}
	rec, err := harness.RunSimBench(tcus, n, workers, reps)
	if err != nil {
		return err
	}
	for _, r := range rec.Results {
		label := r.Engine
		if r.Engine == "sharded" {
			label = fmt.Sprintf("%s workers=%d", r.Engine, r.Workers)
		}
		fmt.Printf("%-20s %10.4fs  %12d cycles  %9.0f events/s\n",
			label, r.ElapsedSec, r.Cycles, r.EventsPerSec)
	}
	for k, v := range rec.SpeedupVsSerialDriver {
		fmt.Printf("speedup %s: %.2fx\n", k, v)
	}
	if rec.Note != "" {
		fmt.Println("note:", rec.Note)
	}
	if path == "-" {
		return rec.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.Write(f); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtbench:", err)
	os.Exit(1)
}
