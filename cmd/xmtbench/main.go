// Command xmtbench runs the design-choice ablations of §IV-A on the
// detailed simulator and prints them as one table: radix (2/4/8),
// granularity (fine vs coarse), and the prefetcher enhancement.
//
// With -trace (and/or -util-svg) the baseline variant additionally
// records a cycle-level trace, exported in Chrome trace-event JSON /
// as a utilization heat strip.
//
// With -host-bench the simulator ablations are skipped and the host
// FFT (the FFTW-substitute baseline) is measured instead: serial 1D
// codelet-on/off pairs over the generated-kernel range, then the
// cache-blocked fused transform rounds against the naive unblocked
// rounds (plus a codelets-off run), serial and parallel, written as a
// BENCH_fft.json perf record. -fft-gate turns the 1D codelet speedups
// into a CI perf ratchet.
//
// With -sim-bench the simulator itself is measured: the same FFT
// workload runs on the legacy serial engine and on the sharded parallel
// engine at several -sim-bench-workers counts, and the wall-clock
// results are written as a BENCH_sim.json perf record.
//
// With -obs-bench the observability layer itself is measured: the same
// workload with observability off, with engine telemetry, and with the
// full live-metrics surface, written as a BENCH_obs.json perf record
// that also carries the metric-primitive microbenchmarks (the
// zero-alloc hot-path contract).
//
// With -serve-obs the ablation run additionally serves live
// observability — /metrics (OpenMetrics), /progress (JSON with
// events/sec and an ETA) and /debug/pprof/* — so a long detailed run
// can be watched in flight.
//
// Usage:
//
//	xmtbench                  # defaults: 4k scaled to 1024 TCUs, 32^3
//	xmtbench -tcus 512 -n 16  # small size (the CI smoke path)
//	xmtbench -sim-workers 4   # ablations on the sharded engine
//	xmtbench -serve-obs :9100 # watch the run: curl :9100/metrics
//	xmtbench -trace /tmp/bench.json -util-svg /tmp/bench.svg
//	xmtbench -host-bench BENCH_fft.json -host-n 128,256
//	xmtbench -host-bench BENCH_fft.json -fft-gate 1.2  # codelet perf ratchet
//	xmtbench -sim-bench BENCH_sim.json -sim-bench-workers 1,2,4
//	xmtbench -sim-bench BENCH_sim.json -sim-gate 1.5   # CI perf ratchet
//	xmtbench -fault-bench BENCH_fault.json -fault-rates 0.005,0.02,0.05
//	xmtbench -obs-bench BENCH_obs.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"

	"xmtfft/internal/baseline"
	"xmtfft/internal/ckpt"
	"xmtfft/internal/harness"
	"xmtfft/internal/viz"
)

func main() {
	tcus := flag.Int("tcus", 1024, "machine size in TCUs (scaled 4k configuration)")
	n := flag.Int("n", 32, "points per dimension (power of two)")
	simWorkers := flag.Int("sim-workers", 0, "simulation worker count: 0 = legacy serial engine, >= 1 = sharded parallel engine")
	simBench := flag.String("sim-bench", "", "measure the simulator (legacy vs sharded engine) on the FFT workload and write a BENCH_sim.json perf record to this path ('-' for stdout)")
	simBenchWorkers := flag.String("sim-bench-workers", "1,2,4", "comma-separated sharded worker counts for -sim-bench")
	simReps := flag.Int("sim-reps", 3, "repetitions per -sim-bench point (best run kept)")
	simGate := flag.Float64("sim-gate", 0, "with -sim-bench: exit non-zero when sharded workers=1 wall-clock exceeds this multiple of legacy (0 disables the gate)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON trace of the baseline variant to this path")
	traceEpoch := flag.Uint64("trace-epoch", 256, "utilization sampling interval in cycles for -trace / -util-svg")
	utilSVG := flag.String("util-svg", "", "write an epoch-utilization heat-strip SVG of the baseline variant to this path")
	hostBench := flag.String("host-bench", "", "measure the host FFT (blocked vs naive fused rounds) and write a BENCH_fft.json perf record to this path ('-' for stdout)")
	hostSizes := flag.String("host-n", "128,256", "comma-separated per-dimension sizes for -host-bench")
	hostWorkers := flag.Int("host-workers", 0, "parallel worker count for -host-bench (0 = GOMAXPROCS)")
	hostReps := flag.Int("host-reps", 1, "repetitions per -host-bench point (best run kept)")
	fftGate := flag.Float64("fft-gate", 0, "with -host-bench: exit non-zero when any serial 1D codelet-on/off speedup falls below this ratio (0 disables the gate)")
	faultBench := flag.String("fault-bench", "", "measure resilience overhead (cycles/GFLOPS vs fault rate) on the FFT workload and write a BENCH_fault.json perf record to this path ('-' for stdout)")
	faultRates := flag.String("fault-rates", "0.005,0.02,0.05", "comma-separated fault rates for -fault-bench (rate 0 baseline is always included)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault-injection streams of -fault-bench")
	serveObs := flag.String("serve-obs", "", "serve live observability (/metrics, /progress, /debug/pprof) on this address during the ablation run, e.g. :9100")
	obsSnapshot := flag.String("obs-snapshot", "", "periodically write the OpenMetrics exposition to this path (atomic replace)")
	obsSnapshotEvery := flag.Duration("obs-snapshot-every", 10*time.Second, "interval between -obs-snapshot writes")
	obsEpoch := flag.Uint64("obs-epoch", 4096, "live-metrics sampling interval in simulated cycles for -serve-obs / -obs-snapshot")
	obsBench := flag.String("obs-bench", "", "measure observability overhead (off vs telemetry vs live) and write a BENCH_obs.json perf record to this path ('-' for stdout)")
	logLevel := flag.String("log-level", "info", "log verbosity on stderr: debug, info, warn or error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
	checkpointPath := flag.String("checkpoint", "", "write a resumable sweep checkpoint to this path at variant boundaries (ablation mode)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "variants between -checkpoint writes")
	resumePath := flag.String("resume", "", "resume an ablation sweep from this checkpoint file; unset flags adopt the checkpoint's values")
	flag.Parse()

	if err := validateFlags(cliFlags{
		tcus: *tcus, n: *n, simWorkers: *simWorkers, simReps: *simReps,
		hostWorkers: *hostWorkers, hostReps: *hostReps,
		tracePath: *tracePath, utilSVG: *utilSVG, traceEpoch: *traceEpoch,
		simBench: *simBench, simBenchWorkers: *simBenchWorkers, simGate: *simGate,
		hostBench: *hostBench, hostSizes: *hostSizes, fftGate: *fftGate,
		faultBench: *faultBench, faultRates: *faultRates,
		serveObs: *serveObs, obsSnapshot: *obsSnapshot,
		obsSnapshotEvery: *obsSnapshotEvery, obsEpoch: *obsEpoch,
		obsBench:   *obsBench,
		checkpoint: *checkpointPath, checkpointEvery: *checkpointEvery, resume: *resumePath,
	}); err != nil {
		usageError(err)
	}
	if _, err := harness.SetupLogger(*logLevel, *logJSON); err != nil {
		usageError(err)
	}

	// Runs last (deferred first): an interrupted sweep exits with code 3
	// after the other defers have flushed profiles and observability.
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()

	stopProfiles, err := harness.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fatal(err)
		}
		if *memProfile != "" {
			fmt.Println("wrote", *memProfile)
		}
	}()

	if *hostBench != "" {
		if err := runHostBench(*hostBench, *hostSizes, *hostWorkers, *hostReps, *fftGate); err != nil {
			fatal(err)
		}
		return
	}
	if *simBench != "" {
		if err := runSimBench(*simBench, *simBenchWorkers, *tcus, *n, *simReps, *simGate); err != nil {
			fatal(err)
		}
		return
	}
	if *faultBench != "" {
		if err := runFaultBench(*faultBench, *faultRates, *tcus, *n, *simWorkers, *faultSeed); err != nil {
			fatal(err)
		}
		return
	}
	if *obsBench != "" {
		if err := runObsBench(*obsBench, *tcus, *n, *simReps); err != nil {
			fatal(err)
		}
		return
	}

	var obs *harness.Obs
	if *serveObs != "" || *obsSnapshot != "" {
		obs = harness.NewObs()
		obs.Epoch = *obsEpoch
		if *serveObs != "" {
			addr, err := obs.Serve(*serveObs)
			if err != nil {
				fatal(err)
			}
			slog.Info("observability server listening", "addr", addr,
				"endpoints", "/metrics /progress /debug/pprof/")
		}
		if *obsSnapshot != "" {
			obs.StartSnapshots(*obsSnapshot, *obsSnapshotEvery, func(err error) {
				slog.Warn("metrics snapshot failed", "err", err)
			})
		}
		defer obs.Close()
	}

	epoch := uint64(0)
	if *tracePath != "" || *utilSVG != "" {
		epoch = *traceEpoch
	}

	// Resume adopts the checkpoint's sweep parameters; explicitly-set
	// flags that contradict it are caught by the harness.
	set := setFlags()
	var ck *harness.AblationCkpt
	stopped := notifyStop()
	if *checkpointPath != "" || *resumePath != "" {
		ck = &harness.AblationCkpt{
			Path:  *checkpointPath,
			Every: *checkpointEvery,
			Stop:  stopped.Load,
			Obs:   obs,
		}
		if *resumePath != "" {
			c, err := ckpt.Read(*resumePath)
			if err != nil {
				fatal(err)
			}
			ck.Resume = c
			if !set["tcus"] {
				*tcus = c.Meta.Config.TCUs
			}
			if !set["n"] {
				*n = c.Meta.Dims[2]
			}
			if !set["sim-workers"] {
				*simWorkers = c.Meta.Workers
			}
			slog.Info("resuming ablation sweep", "path", *resumePath,
				"variants_done", c.Meta.Stage)
		}
	}
	rec, err := harness.AblationReportCkpt(os.Stdout, *tcus, *n, epoch, *simWorkers, obs, ck)
	interrupted := errors.Is(err, harness.ErrInterrupted)
	if err != nil && !interrupted {
		fatal(err)
	}
	if interrupted {
		exitCode = exitInterrupted
		if *checkpointPath != "" {
			fmt.Printf("interrupted; resume with -resume %s\n", *checkpointPath)
		} else {
			fmt.Println("interrupted")
		}
		return
	}
	if rec == nil {
		return
	}
	writeFile := func(path string, f func(io.Writer) error) {
		if path == "" {
			return
		}
		if err := harness.WriteFileAtomic(path, f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	writeFile(*tracePath, func(w io.Writer) error { return rec.WritePerfetto(w) })
	writeFile(*utilSVG, func(w io.Writer) error {
		return viz.UtilizationSVG(w, rec.Label, rec.Epoch, rec.Samples)
	})
}

// writeRecord emits a benchmark record to stdout ("-") or atomically to
// a file, so an interrupted run never truncates a previous artifact.
func writeRecord(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	if err := harness.WriteFileAtomic(path, write); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

// runHostBench measures the host FFT, writes the perf record, and (when
// gate > 0) fails if any serial 1D codelet-on/off speedup falls below
// the gate — the host-FFT analog of the -sim-gate CI ratchet.
func runHostBench(path, sizeList string, workers, reps int, gate float64) error {
	sizes, err := parseIntList("-host-n", sizeList)
	if err != nil {
		return err
	}
	rec, err := baseline.RunHostBench(sizes, workers, reps)
	if err != nil {
		return err
	}
	for _, r := range rec.Results {
		fmt.Printf("%-44s %12v  %7.3f GFLOPS\n", r.Label, r.Elapsed, r.GFLOPS)
	}
	for _, n := range baseline.HostBench1DSizes {
		if sp := rec.CodeletSpeedup1D(n); sp > 0 {
			fmt.Printf("1d n=%-5d serial codelet speedup: %.2fx\n", n, sp)
		}
	}
	for _, n := range sizes {
		if sp := rec.BlockedSpeedup(n, 1); sp > 0 {
			fmt.Printf("%d^3 serial blocked/naive speedup: %.2fx\n", n, sp)
		}
		if sp := rec.CodeletSpeedup3D(n, 1); sp > 0 {
			fmt.Printf("%d^3 serial codelet speedup: %.2fx\n", n, sp)
		}
	}
	if err := writeRecord(path, rec.Write); err != nil {
		return err
	}
	if gate > 0 {
		worst, worstN := 0.0, 0
		for _, n := range baseline.HostBench1DSizes {
			sp := rec.CodeletSpeedup1D(n)
			if sp == 0 {
				return fmt.Errorf("-fft-gate %.2f: no codelet-on/off pair for 1d n=%d; gate cannot be evaluated", gate, n)
			}
			if worst == 0 || sp < worst {
				worst, worstN = sp, n
			}
		}
		if worst < gate {
			return fmt.Errorf("-fft-gate %.2f not met: 1d n=%d codelet speedup is %.2fx", gate, worstN, worst)
		}
		fmt.Printf("fft-gate ok: %.2fx >= %.2fx (worst at n=%d)\n", worst, gate, worstN)
	}
	return nil
}

// runSimBench measures the simulation engines, writes BENCH_sim.json,
// and (when gate > 0) fails if the 1-worker sharded run costs more than
// gate times the legacy engine's wall-clock — the CI perf ratchet.
func runSimBench(path, workerList string, tcus, n, reps int, gate float64) error {
	workers, err := parseIntList("-sim-bench-workers", workerList)
	if err != nil {
		return err
	}
	rec, err := harness.RunSimBench(tcus, n, workers, reps)
	if err != nil {
		return err
	}
	for _, r := range rec.Results {
		label := r.Engine
		if r.Engine == "sharded" {
			label = fmt.Sprintf("%s workers=%d", r.Engine, r.Workers)
		}
		fmt.Printf("%-20s %10.4fs  %12d cycles  %9.0f useful-events/s  (%d engine events)\n",
			label, r.ElapsedSec, r.Cycles, r.UsefulEventsPerSec, r.Events)
	}
	if rec.OverheadVsLegacy > 0 {
		fmt.Printf("overhead vs legacy (sharded workers=1): %.2fx\n", rec.OverheadVsLegacy)
	}
	for k, v := range rec.SpeedupVsSerialDriver {
		fmt.Printf("speedup %s: %.2fx\n", k, v)
	}
	if rec.Note != "" {
		fmt.Println("note:", rec.Note)
	}
	if err := writeRecord(path, rec.Write); err != nil {
		return err
	}
	if gate > 0 {
		if rec.OverheadVsLegacy == 0 {
			return fmt.Errorf("-sim-gate %.2f: overhead_vs_legacy is unavailable (no workers=1 run or sub-resolution timings); gate cannot be evaluated", gate)
		}
		if rec.OverheadVsLegacy > gate {
			return fmt.Errorf("-sim-gate %.2f exceeded: sharded workers=1 is %.2fx legacy wall-clock", gate, rec.OverheadVsLegacy)
		}
		fmt.Printf("sim-gate ok: %.2fx <= %.2fx\n", rec.OverheadVsLegacy, gate)
	}
	return nil
}

// runObsBench measures observability overhead and writes BENCH_obs.json.
func runObsBench(path string, tcus, n, reps int) error {
	rec, err := harness.RunObsBench(tcus, n, reps)
	if err != nil {
		return err
	}
	for _, r := range rec.Results {
		fmt.Printf("%-10s %10.4fs  %12d cycles  %9.0f events/s  %+6.2f%%\n",
			r.Mode, r.ElapsedSec, r.Cycles, r.EventsPerSec, r.OverheadPct)
	}
	hp := rec.HotPath
	fmt.Printf("hot path: counter add %.1f ns (%.0f allocs), gauge set %.1f ns (%.0f allocs), histogram observe %.1f ns (%.0f allocs), encode %.0f ns\n",
		hp.CounterAddNs, hp.CounterAddAllocs, hp.GaugeSetNs, hp.GaugeSetAllocs,
		hp.HistogramObserveNs, hp.HistObserveAllocs, hp.EncodeNs)
	if rec.Note != "" {
		fmt.Println("note:", rec.Note)
	}
	return writeRecord(path, rec.Write)
}

// runFaultBench measures resilience overhead and writes BENCH_fault.json.
func runFaultBench(path, rateList string, tcus, n, workers int, seed uint64) error {
	rates, err := parseRateList("-fault-rates", rateList)
	if err != nil {
		return err
	}
	rec, err := harness.RunFaultBench(tcus, n, workers, seed, rates)
	if err != nil {
		return err
	}
	for _, r := range rec.Results {
		fmt.Printf("rate %-7g %12d cycles  %7.2f GFLOPS  +%5.1f%%  retransmits %d  ecc corrected %d\n",
			r.Rate, r.Cycles, r.GFLOPS, r.CyclesOverhead*100, r.NoCRetransmits, r.ECCCorrected)
	}
	if rec.Note != "" {
		fmt.Println("note:", rec.Note)
	}
	return writeRecord(path, rec.Write)
}

// fatal reports a runtime failure through the structured logger (text
// or JSON per -log-json) and exits with status 1. Usage errors keep
// plain stderr output (usageError) because they can occur before the
// logger is configured.
func fatal(err error) {
	slog.Error("xmtbench failed", "err", err)
	os.Exit(1)
}

// usageError reports an invalid flag combination and exits with the
// conventional usage-error status 2.
func usageError(err error) {
	fmt.Fprintln(os.Stderr, "xmtbench:", err)
	fmt.Fprintln(os.Stderr, "run with -h for flag documentation")
	os.Exit(2)
}
