// Command xmtbench runs the design-choice ablations of §IV-A on the
// detailed simulator and prints them as one table: radix (2/4/8),
// granularity (fine vs coarse), and the prefetcher enhancement.
//
// Usage:
//
//	xmtbench                  # defaults: 4k scaled to 512 TCUs, 16^3
//	xmtbench -tcus 1024 -n 32
package main

import (
	"flag"
	"fmt"
	"os"

	"xmtfft/internal/harness"
)

func main() {
	tcus := flag.Int("tcus", 512, "machine size in TCUs (scaled 4k configuration)")
	n := flag.Int("n", 16, "points per dimension (power of two)")
	flag.Parse()

	if err := harness.AblationReport(os.Stdout, *tcus, *n); err != nil {
		fmt.Fprintln(os.Stderr, "xmtbench:", err)
		os.Exit(1)
	}
}
