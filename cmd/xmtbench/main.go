// Command xmtbench runs the design-choice ablations of §IV-A on the
// detailed simulator and prints them as one table: radix (2/4/8),
// granularity (fine vs coarse), and the prefetcher enhancement.
//
// With -trace (and/or -util-svg) the baseline variant additionally
// records a cycle-level trace, exported in Chrome trace-event JSON /
// as a utilization heat strip.
//
// Usage:
//
//	xmtbench                  # defaults: 4k scaled to 512 TCUs, 16^3
//	xmtbench -tcus 1024 -n 32
//	xmtbench -trace /tmp/bench.json -util-svg /tmp/bench.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"xmtfft/internal/harness"
	"xmtfft/internal/viz"
)

func main() {
	tcus := flag.Int("tcus", 512, "machine size in TCUs (scaled 4k configuration)")
	n := flag.Int("n", 16, "points per dimension (power of two)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON trace of the baseline variant to this path")
	traceEpoch := flag.Uint64("trace-epoch", 256, "utilization sampling interval in cycles for -trace / -util-svg")
	utilSVG := flag.String("util-svg", "", "write an epoch-utilization heat-strip SVG of the baseline variant to this path")
	flag.Parse()

	epoch := uint64(0)
	if *tracePath != "" || *utilSVG != "" {
		if *traceEpoch == 0 {
			fatal(fmt.Errorf("-trace-epoch must be positive"))
		}
		epoch = *traceEpoch
	}
	rec, err := harness.AblationReportTrace(os.Stdout, *tcus, *n, epoch)
	if err != nil {
		fatal(err)
	}
	if rec == nil {
		return
	}
	writeFile := func(path string, f func(*os.File) error) {
		if path == "" {
			return
		}
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		if err := f(fh); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	writeFile(*tracePath, func(f *os.File) error { return rec.WritePerfetto(f) })
	writeFile(*utilSVG, func(f *os.File) error {
		return viz.UtilizationSVG(f, rec.Label, rec.Epoch, rec.Samples)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtbench:", err)
	os.Exit(1)
}
