package main

// Flag validation, separated from main so it is a pure function over
// the parsed values and unit-testable. Violations are user errors:
// main reports them on stderr and exits with status 2, distinct from
// the status-1 runtime failures in fatal.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"xmtfft/internal/fft"
)

// cliFlags is the subset of xmtbench's flags that can be invalid in
// ways flag parsing itself does not catch.
type cliFlags struct {
	tcus        int
	n           int
	simWorkers  int
	simReps     int
	hostWorkers int
	hostReps    int
	tracePath   string
	utilSVG     string
	traceEpoch  uint64

	simBench        string
	simBenchWorkers string
	simGate         float64
	hostBench       string
	hostSizes       string
	fftGate         float64
	faultBench      string
	faultRates      string
	obsBench        string

	serveObs         string
	obsSnapshot      string
	obsSnapshotEvery time.Duration
	obsEpoch         uint64

	checkpoint      string
	checkpointEvery int
	resume          string
}

// parseIntList parses a comma-separated integer list flag.
func parseIntList(flagName, list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRateList parses a comma-separated probability list flag.
func parseRateList(flagName, list string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s entry %q: %w", flagName, s, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("%s entries are probabilities and must be in [0, 1], got %g", flagName, v)
		}
		out = append(out, v)
	}
	return out, nil
}

// validateFlags returns the first violation with an actionable message,
// or nil when the combination is runnable.
func validateFlags(f cliFlags) error {
	if f.tcus < 1 {
		return fmt.Errorf("-tcus must be >= 1, got %d", f.tcus)
	}
	if !fft.IsPowerOfTwo(f.n) {
		return fmt.Errorf("-n must be a power of two, got %d", f.n)
	}
	if f.simWorkers < 0 {
		return fmt.Errorf("-sim-workers must be >= 0 (0 selects the legacy serial engine), got %d", f.simWorkers)
	}
	if f.simReps < 1 {
		return fmt.Errorf("-sim-reps must be >= 1, got %d", f.simReps)
	}
	if f.hostWorkers < 0 {
		return fmt.Errorf("-host-workers must be >= 0 (0 = GOMAXPROCS), got %d", f.hostWorkers)
	}
	if f.hostReps < 1 {
		return fmt.Errorf("-host-reps must be >= 1, got %d", f.hostReps)
	}
	if (f.tracePath != "" || f.utilSVG != "") && f.traceEpoch == 0 {
		return fmt.Errorf("-trace-epoch must be positive when -trace or -util-svg is set")
	}
	if f.simGate < 0 {
		return fmt.Errorf("-sim-gate must be >= 0 (0 disables the gate), got %g", f.simGate)
	}
	if f.simGate > 0 && f.simBench == "" {
		return fmt.Errorf("-sim-gate requires -sim-bench")
	}
	if f.simBench != "" {
		workers, err := parseIntList("-sim-bench-workers", f.simBenchWorkers)
		if err != nil {
			return err
		}
		hasSerial := false
		for _, w := range workers {
			if w < 1 {
				return fmt.Errorf("-sim-bench-workers entries must be >= 1, got %d", w)
			}
			if w == 1 {
				hasSerial = true
			}
		}
		if f.simGate > 0 && !hasSerial {
			return fmt.Errorf("-sim-gate compares the workers=1 sharded run against legacy; -sim-bench-workers must include 1")
		}
	}
	if f.fftGate < 0 {
		return fmt.Errorf("-fft-gate must be >= 0 (0 disables the gate), got %g", f.fftGate)
	}
	if f.fftGate > 0 && f.hostBench == "" {
		return fmt.Errorf("-fft-gate requires -host-bench")
	}
	if f.hostBench != "" {
		sizes, err := parseIntList("-host-n", f.hostSizes)
		if err != nil {
			return err
		}
		for _, n := range sizes {
			if n < 2 {
				return fmt.Errorf("-host-n entries must be >= 2, got %d", n)
			}
		}
	}
	if f.faultBench != "" {
		if _, err := parseRateList("-fault-rates", f.faultRates); err != nil {
			return err
		}
	}
	if f.serveObs != "" || f.obsSnapshot != "" {
		if f.hostBench != "" || f.simBench != "" || f.faultBench != "" || f.obsBench != "" {
			return fmt.Errorf("-serve-obs and -obs-snapshot watch the ablation run and cannot be combined with a bench mode")
		}
		if f.obsEpoch == 0 {
			return fmt.Errorf("-obs-epoch must be positive when -serve-obs or -obs-snapshot is set")
		}
	}
	if f.obsSnapshot != "" && f.obsSnapshotEvery <= 0 {
		return fmt.Errorf("-obs-snapshot-every must be positive, got %v", f.obsSnapshotEvery)
	}
	if f.checkpoint != "" || f.resume != "" {
		if f.hostBench != "" || f.simBench != "" || f.faultBench != "" || f.obsBench != "" {
			return fmt.Errorf("-checkpoint and -resume cover the ablation sweep and cannot be combined with a bench mode")
		}
	}
	if f.checkpoint != "" && f.checkpointEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1 variant, got %d", f.checkpointEvery)
	}
	return nil
}
