package main

// Checkpoint/resume and graceful-stop wiring for the ablation sweep.
// The sweep's quiescent points are variant boundaries (each variant
// rebuilds a fresh machine), so checkpoints are meta-only: completed
// variants and their cycle counts. Exit code 3 marks a signal-stopped
// run, as in xmtfft.

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// exitInterrupted is the process exit code for a signal-stopped run.
const exitInterrupted = 3

// setFlags returns the names of flags explicitly set on the command
// line, to distinguish "defaulted" from "requested" on resume.
func setFlags() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// notifyStop installs the SIGINT/SIGTERM handler: the first signal
// requests a graceful stop at the next variant boundary; a second one
// aborts immediately with the interrupted exit code.
func notifyStop() *atomic.Bool {
	var stopped atomic.Bool
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		slog.Warn("signal received; stopping at the next variant boundary (send again to abort immediately)",
			"signal", s.String())
		stopped.Store(true)
		s = <-ch
		slog.Error("second signal; aborting without flushing", "signal", s.String())
		os.Exit(exitInterrupted)
	}()
	return &stopped
}
