package main

import (
	"strings"
	"testing"
)

// okFlags returns a runnable baseline flag set; tests mutate one field.
func okFlags() cliFlags {
	return cliFlags{
		tcus: 1024, n: 32, simReps: 3, hostReps: 1, traceEpoch: 256,
		simBenchWorkers: "1,2,4", hostSizes: "128,256", faultRates: "0.005,0.02",
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string // empty = valid
	}{
		{"baseline", func(f *cliFlags) {}, ""},
		{"zero tcus", func(f *cliFlags) { f.tcus = 0 }, "-tcus"},
		{"n not power of two", func(f *cliFlags) { f.n = 100 }, "power of two"},
		{"negative sim workers", func(f *cliFlags) { f.simWorkers = -2 }, "-sim-workers"},
		{"zero sim reps", func(f *cliFlags) { f.simReps = 0 }, "-sim-reps"},
		{"negative host workers", func(f *cliFlags) { f.hostWorkers = -1 }, "-host-workers"},
		{"zero host reps", func(f *cliFlags) { f.hostReps = 0 }, "-host-reps"},
		{"trace with zero epoch", func(f *cliFlags) { f.tracePath = "t.json"; f.traceEpoch = 0 }, "-trace-epoch"},
		{"bad sim-bench workers entry", func(f *cliFlags) { f.simBench = "-"; f.simBenchWorkers = "1,x" }, "-sim-bench-workers"},
		{"zero sim-bench workers entry", func(f *cliFlags) { f.simBench = "-"; f.simBenchWorkers = "0" }, ">= 1"},
		{"sim-bench list ignored when off", func(f *cliFlags) { f.simBenchWorkers = "garbage" }, ""},
		{"negative sim gate", func(f *cliFlags) { f.simBench = "-"; f.simGate = -1 }, "-sim-gate"},
		{"sim gate without bench", func(f *cliFlags) { f.simGate = 1.5 }, "requires -sim-bench"},
		{"sim gate without workers=1", func(f *cliFlags) { f.simBench = "-"; f.simGate = 1.5; f.simBenchWorkers = "2,4" }, "must include 1"},
		{"sim gate ok", func(f *cliFlags) { f.simBench = "-"; f.simGate = 1.5 }, ""},
		{"bad host size entry", func(f *cliFlags) { f.hostBench = "-"; f.hostSizes = "128,nope" }, "-host-n"},
		{"tiny host size", func(f *cliFlags) { f.hostBench = "-"; f.hostSizes = "1" }, ">= 2"},
		{"bad fault rate entry", func(f *cliFlags) { f.faultBench = "-"; f.faultRates = "0.1,high" }, "-fault-rates"},
		{"fault rate above 1", func(f *cliFlags) { f.faultBench = "-"; f.faultRates = "2" }, "[0, 1]"},
		{"fault bench ok", func(f *cliFlags) { f.faultBench = "BENCH_fault.json" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := okFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
