// Command xmtcc compiles and runs XMTC programs (the C-like parallel
// language of the XMT project: spawn blocks, $ thread ids and the
// ps(counter, delta) prefix-sum builtin) on the simulated machine.
//
// Usage:
//
//	xmtcc prog.xc              # compile + run, print globals
//	xmtcc -S prog.xc           # emit ISA assembly
//	xmtcc -tcus 1024 prog.xc
//
// With no file, a built-in demo (histogram via ps counters) runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"xmtfft/internal/config"
	"xmtfft/internal/xmt"
	"xmtfft/internal/xmtc"
)

const demo = `
// Histogram of values into 4 buckets using one ps counter per bucket.
int data[256];
int c0; int c1; int c2; int c3;
main {
  int i = 0;
  while (i < 256) {
    data[i] = (i * 7 + 3) % 4;
    i = i + 1;
  }
  spawn (256) {
    int v = data[$];
    if (v == 0) { ps(0, 1); }
    else if (v == 1) { ps(1, 1); }
    else if (v == 2) { ps(2, 1); }
    else { ps(3, 1); }
  }
  c0 = ps(0, 0);
  c1 = ps(1, 0);
  c2 = ps(2, 0);
  c3 = ps(3, 0);
}
`

func main() {
	tcus := flag.Int("tcus", 256, "machine size in TCUs (scaled 4k configuration)")
	emit := flag.Bool("S", false, "emit ISA assembly instead of running")
	extra := flag.Int("mem", 1<<16, "extra shared memory bytes beyond globals")
	flag.Parse()

	src := demo
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}

	c, err := xmtc.Compile(src)
	if err != nil {
		fatal(err)
	}
	if *emit {
		fmt.Print(c.Program.Disassemble())
		return
	}

	cfg, err := config.FourK().Scaled(*tcus)
	if err != nil {
		fatal(err)
	}
	m, err := xmt.New(cfg)
	if err != nil {
		fatal(err)
	}
	vm, cycles, err := c.Run(m, *extra, nil)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("machine: %s\n", cfg)
	fmt.Printf("cycles: %d (%d serial + %d thread instructions, %d threads)\n",
		cycles, vm.SerialInstrs, vm.ThreadInstrs, m.Counters.Threads)
	fmt.Println("globals:")
	names := make([]string, 0, len(c.Symbols))
	for n := range c.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sym := c.Symbols[n]
		if sym.ArrayLen > 0 {
			fmt.Printf("  %-12s %s[%d] at %d\n", n, sym.Type, sym.ArrayLen, sym.Addr)
			continue
		}
		if sym.Type == xmtc.TInt {
			fmt.Printf("  %-12s = %d\n", n, vm.LoadWord(sym.Addr))
		} else {
			fmt.Printf("  %-12s = %g\n", n, vm.LoadFloat(sym.Addr))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmtcc:", err)
	os.Exit(1)
}
